//! Hot-path microbenchmarks: the flattened data path of the functional
//! reproduction, measured against its pre-refactor pointer-chasing
//! baselines.
//!
//! MegIS's premise is that Steps 2–3 run at flash-streaming bandwidth on
//! sorted flat data (§4.3.1); the host-side reproduction must not give that
//! back in its innermost loops. This experiment measures the three hot
//! kernels after the columnar refactor:
//!
//! * **intersection** — the galloping merge of
//!   [`SortedKmerDatabase::intersect_sorted`] against the retained
//!   two-pointer reference, on a skewed workload (`|DB| = 64 · |Q|`, the
//!   realistic per-shard regime where galloping wins),
//! * **KMC counting** — `collect → sort_unstable → run-length group`
//!   against the old per-occurrence `BTreeMap` insertion,
//! * **database build** — the columnar pair-sort build against the old
//!   `BTreeMap<Kmer, Vec<TaxId>>` + `contains` build,
//!
//! plus **shard residency**: [`ShardSet::resident_bytes`] across 1–8 shards
//! must stay exactly one copy of the columnar storage (zero-copy views),
//! where the old deep-copy partition held a second full copy.
//!
//! The `hotpath` binary prints this report and writes the numbers to
//! `BENCH_hotpath.json` — the repo's performance trajectory. CI runs it in
//! release mode, greps the verdict lines, and uploads the JSON, so a future
//! PR that regresses the hot path below the 2× galloping threshold (or
//! reintroduces a database copy) fails the smoke test.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use megis_genomics::database::SortedKmerDatabase;
use megis_genomics::kmer::{Kmer, KmerExtractor};
use megis_genomics::read::ReadSet;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_genomics::taxonomy::TaxId;
use megis_sched::ShardSet;
use megis_tools::kmc::KmerCounts;

use crate::report::Report;

/// Reference genomes in the intersection-fixture database. The database
/// must be far larger than the last-level cache for the measurement to be
/// honest: a cache-resident k-mer column makes the two-pointer scan nearly
/// free and hides the galloping win that exists at paper scale, where the
/// database always streams from memory (or flash).
const INTERSECT_GENOMES: usize = 64;
/// Bases per intersection-fixture genome (~2M database entries, ~64 MB of
/// k-mer column).
const INTERSECT_GENOME_LEN: usize = 32_000;
/// Reference genomes in the (smaller) build-throughput fixture.
const BUILD_GENOMES: usize = 16;
/// Bases per build-fixture genome.
const BUILD_GENOME_LEN: usize = 8_000;
/// k-mer length of the database and queries.
const K: usize = 31;
/// Query skew: one query per this many database entries (`|DB| = SKEW·|Q|`).
const SKEW: usize = 64;
/// Reads in the counting fixture.
const READS: usize = 400;
/// Trials per kernel; the best trial is reported (suppresses scheduler
/// noise, keeps the structural effect).
const TRIALS: usize = 3;
/// Minimum measured span per trial; kernels faster than this are iterated.
const MIN_MEASURE: Duration = Duration::from_millis(10);
/// The CI verdict threshold: galloping must beat two-pointer by at least
/// this factor on the skewed workload.
const GALLOP_THRESHOLD: f64 = 2.0;

/// Best-of-[`TRIALS`] seconds per invocation of `f`, each trial iterating
/// until at least [`MIN_MEASURE`] has elapsed.
fn best_seconds<R>(mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let mut iters = 0u32;
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() >= MIN_MEASURE {
                break;
            }
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// The pre-refactor database build (per-entry `BTreeMap` nodes plus an
/// `O(t)` `contains` scan per occurrence), kept as the measured baseline.
fn build_btreemap(references: &ReferenceCollection, k: usize) -> Vec<(Kmer, Vec<TaxId>)> {
    let mut map: BTreeMap<Kmer, Vec<TaxId>> = BTreeMap::new();
    for genome in references.genomes() {
        for kmer in KmerExtractor::new(genome.sequence(), k) {
            let taxa = map.entry(kmer.canonical()).or_default();
            if !taxa.contains(&genome.taxid()) {
                taxa.push(genome.taxid());
            }
        }
    }
    map.into_iter()
        .map(|(kmer, mut taxa)| {
            taxa.sort();
            (kmer, taxa)
        })
        .collect()
}

/// The pre-refactor KMC counting (per-occurrence ordered-map insertion),
/// kept as the measured baseline.
fn count_btreemap(reads: &ReadSet, k: usize) -> Vec<(Kmer, u32)> {
    let mut map: BTreeMap<Kmer, u32> = BTreeMap::new();
    for read in reads.iter() {
        for kmer in read.kmers(k) {
            *map.entry(kmer.canonical()).or_insert(0) += 1;
        }
    }
    map.into_iter().collect()
}

/// Everything the hot-path experiment measured; [`hotpath_measure`] fills
/// it, [`HotpathMeasurement::report`] renders the text report, and
/// [`HotpathMeasurement::to_json`] serializes the `BENCH_hotpath.json`
/// trajectory record.
#[derive(Debug, Clone)]
pub struct HotpathMeasurement {
    /// Distinct k-mers in the database fixture.
    pub db_entries: usize,
    /// k-mer→taxon associations in the database fixture.
    pub db_associations: usize,
    /// Query k-mers in the skewed intersection workload.
    pub queries: usize,
    /// k-mer occurrences in the counting workload.
    pub count_occurrences: u64,
    /// k-mer occurrences the build consumes.
    pub build_inputs: u64,
    /// Seconds per two-pointer intersection pass (best trial).
    pub two_pointer_s: f64,
    /// Seconds per galloping intersection pass (best trial).
    pub gallop_s: f64,
    /// Seconds per `BTreeMap` counting pass (best trial).
    pub count_btreemap_s: f64,
    /// Seconds per sort-and-group counting pass (best trial).
    pub count_sort_s: f64,
    /// Seconds per `BTreeMap` database build (best trial).
    pub build_btreemap_s: f64,
    /// Seconds per columnar database build (best trial).
    pub build_columnar_s: f64,
    /// Heap bytes of one columnar database copy.
    pub db_heap_bytes: u64,
    /// `(shard count, ShardSet::resident_bytes)` for each swept count.
    pub resident_by_shards: Vec<(usize, u64)>,
    /// Whether every refactored kernel reproduced its baseline exactly
    /// (galloping vs two-pointer, sort-count vs map-count, columnar build
    /// vs map build).
    pub parity: bool,
}

impl HotpathMeasurement {
    /// Galloping speedup over the two-pointer reference.
    pub fn gallop_speedup(&self) -> f64 {
        self.two_pointer_s / self.gallop_s
    }

    /// Sort-and-group counting speedup over the `BTreeMap` baseline.
    pub fn count_speedup(&self) -> f64 {
        self.count_btreemap_s / self.count_sort_s
    }

    /// Columnar build speedup over the `BTreeMap` baseline.
    pub fn build_speedup(&self) -> f64 {
        self.build_btreemap_s / self.build_columnar_s
    }

    /// Shard-set resident bytes relative to one database copy, at the
    /// largest swept shard count. Exactly 1.0 for zero-copy views; ~2.0 was
    /// the deep-copy number this refactor removes.
    pub fn resident_ratio(&self) -> f64 {
        let (_, resident) = self.resident_by_shards.last().copied().unwrap_or((0, 0));
        resident as f64 / self.db_heap_bytes as f64
    }

    /// The CI verdict: galloping beats two-pointer by at least the 2x
    /// threshold on the skewed workload.
    pub fn gallop_confirmed(&self) -> bool {
        self.gallop_speedup() >= GALLOP_THRESHOLD
    }

    /// The CI verdict: sharding kept one resident database copy.
    pub fn zero_copy_confirmed(&self) -> bool {
        self.resident_by_shards
            .iter()
            .all(|(_, resident)| *resident == self.db_heap_bytes)
    }

    /// Renders the plain-text report with the greppable verdict lines.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title(
            "Hot-path analysis: columnar k-mer database, galloping intersection, zero-copy shards",
        );
        report.line(&format!(
            "database: {} entries, {} associations (k = {K}); queries: {} \
             (skew |DB|/|Q| = {SKEW}); best of {TRIALS} trials per kernel",
            self.db_entries, self.db_associations, self.queries,
        ));

        let melems = (self.db_entries + self.queries) as f64 / 1e6;
        report.section(&format!("intersection finding (|DB| = {SKEW} * |Q|)"));
        report.table_header(&["kernel", "ms/pass", "Melem/s"]);
        report.table_row(
            "two-pointer",
            &[self.two_pointer_s * 1e3, melems / self.two_pointer_s],
        );
        report.table_row("galloping", &[self.gallop_s * 1e3, melems / self.gallop_s]);
        report.line(&format!("speedup: {:.2}x", self.gallop_speedup()));

        let mkmers = self.count_occurrences as f64 / 1e6;
        report.section(&format!(
            "KMC counting ({} k-mer occurrences)",
            self.count_occurrences
        ));
        report.table_header(&["kernel", "ms/pass", "Mkmer/s"]);
        report.table_row(
            "btreemap",
            &[self.count_btreemap_s * 1e3, mkmers / self.count_btreemap_s],
        );
        report.table_row(
            "sort+group",
            &[self.count_sort_s * 1e3, mkmers / self.count_sort_s],
        );
        report.line(&format!("speedup: {:.2}x", self.count_speedup()));

        let minputs = self.build_inputs as f64 / 1e6;
        report.section(&format!(
            "database build ({} k-mer occurrences)",
            self.build_inputs
        ));
        report.table_header(&["kernel", "ms/pass", "Mkmer/s"]);
        report.table_row(
            "btreemap",
            &[self.build_btreemap_s * 1e3, minputs / self.build_btreemap_s],
        );
        report.table_row(
            "columnar",
            &[self.build_columnar_s * 1e3, minputs / self.build_columnar_s],
        );
        report.line(&format!("speedup: {:.2}x", self.build_speedup()));

        report.section("shard residency (host heap, shared storage counted once)");
        report.line(&format!(
            "one database copy: {:.2} MB",
            self.db_heap_bytes as f64 / 1e6
        ));
        report.table_header(&["shards", "resident MB", "x database"]);
        for (shards, resident) in &self.resident_by_shards {
            report.table_row(
                &shards.to_string(),
                &[
                    *resident as f64 / 1e6,
                    *resident as f64 / self.db_heap_bytes as f64,
                ],
            );
        }

        report.line("");
        report.line(&format!(
            "parity with two-pointer reference: {}",
            if self.parity { "identical" } else { "DIVERGED" }
        ));
        report.line(&format!(
            "galloping speedup: {} ({:.2}x vs the {GALLOP_THRESHOLD:.1}x threshold)",
            if self.gallop_confirmed() {
                "confirmed"
            } else {
                "NOT OBSERVED"
            },
            self.gallop_speedup(),
        ));
        report.line(&format!(
            "zero-copy shards: {} ({:.2}x of one database copy at {} shards)",
            if self.zero_copy_confirmed() {
                "confirmed"
            } else {
                "NOT OBSERVED"
            },
            self.resident_ratio(),
            self.resident_by_shards.last().map(|(s, _)| *s).unwrap_or(0),
        ));
        report.line("");
        report.line("Galloping advances on the longer (database) side in O(log gap) probes, so");
        report.line("the skewed merge is bounded by |Q| * log(|DB|/|Q|) instead of |DB| + |Q|;");
        report.line("counting and build replace per-item ordered-map insertion with one");
        report.line("sort_unstable + run-length group over a dense array; and partitioning");
        report.line("returns range views over one Arc-shared columnar storage, so an N-shard");
        report.line("deployment keeps a single resident copy of the database.");
        report.finish()
    }

    /// Serializes the measurement as the `BENCH_hotpath.json` record.
    pub fn to_json(&self) -> String {
        let residents: Vec<String> = self
            .resident_by_shards
            .iter()
            .map(|(shards, bytes)| format!("    \"{shards}\": {bytes}"))
            .collect();
        format!(
            "{{\n\
             \x20 \"bench\": \"hotpath\",\n\
             \x20 \"kmer_len\": {K},\n\
             \x20 \"db_entries\": {},\n\
             \x20 \"db_associations\": {},\n\
             \x20 \"queries\": {},\n\
             \x20 \"skew\": {SKEW},\n\
             \x20 \"parity\": {},\n\
             \x20 \"intersect\": {{\n\
             \x20   \"two_pointer_us_per_pass\": {:.3},\n\
             \x20   \"gallop_us_per_pass\": {:.3},\n\
             \x20   \"speedup\": {:.3},\n\
             \x20   \"threshold\": {GALLOP_THRESHOLD:.1},\n\
             \x20   \"confirmed\": {}\n\
             \x20 }},\n\
             \x20 \"count\": {{\n\
             \x20   \"occurrences\": {},\n\
             \x20   \"btreemap_us_per_pass\": {:.3},\n\
             \x20   \"sort_group_us_per_pass\": {:.3},\n\
             \x20   \"speedup\": {:.3}\n\
             \x20 }},\n\
             \x20 \"build\": {{\n\
             \x20   \"occurrences\": {},\n\
             \x20   \"btreemap_us_per_pass\": {:.3},\n\
             \x20   \"columnar_us_per_pass\": {:.3},\n\
             \x20   \"speedup\": {:.3}\n\
             \x20 }},\n\
             \x20 \"shards\": {{\n\
             \x20   \"db_heap_bytes\": {},\n\
             \x20   \"resident_bytes\": {{\n{}\n\x20   }},\n\
             \x20   \"resident_ratio\": {:.4},\n\
             \x20   \"zero_copy_confirmed\": {}\n\
             \x20 }}\n\
             }}\n",
            self.db_entries,
            self.db_associations,
            self.queries,
            self.parity,
            self.two_pointer_s * 1e6,
            self.gallop_s * 1e6,
            self.gallop_speedup(),
            self.gallop_confirmed(),
            self.count_occurrences,
            self.count_btreemap_s * 1e6,
            self.count_sort_s * 1e6,
            self.count_speedup(),
            self.build_inputs,
            self.build_btreemap_s * 1e6,
            self.build_columnar_s * 1e6,
            self.build_speedup(),
            self.db_heap_bytes,
            residents.join(",\n"),
            self.resident_ratio(),
            self.zero_copy_confirmed(),
        )
    }
}

/// Runs the hot-path microbenchmarks and returns the raw measurement.
pub fn hotpath_measure() -> HotpathMeasurement {
    // Intersection fixture: a database far larger than the per-pass query
    // list (and than the last-level cache), queries drawn from the database
    // so both merges do full matching work (every query is a hit). Entries
    // are kept with probability 1/SKEW by a seeded hash rather than a fixed
    // stride, so the gaps are irregular (geometric-ish around SKEW) — a
    // fixed stride would hand the galloping hint its best case and
    // overstate the win.
    let references = ReferenceCollection::synthetic(INTERSECT_GENOMES, INTERSECT_GENOME_LEN, 4242);
    let database = SortedKmerDatabase::build(&references, K);
    let queries: Vec<Kmer> = database
        .kmers()
        .enumerate()
        .filter(|(i, _)| (*i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58 == 0)
        .map(|(_, kmer)| kmer)
        .collect();

    // A mixed list (hits + foreign misses + duplicates) for the parity
    // check, so equivalence is asserted beyond the skewed shape.
    let foreign = ReferenceCollection::synthetic(2, 2_000, 777);
    let mut mixed: Vec<Kmer> = queries.clone();
    mixed.extend(KmerExtractor::new(foreign.genomes()[0].sequence(), K).map(|k| k.canonical()));
    mixed.extend(queries.iter().step_by(7).copied());
    mixed.sort();

    let mut parity = database.intersect_sorted(&queries)
        == database.intersect_sorted_two_pointer(&queries)
        && database.intersect_sorted(&mixed) == database.intersect_sorted_two_pointer(&mixed);

    let two_pointer_s = best_seconds(|| database.intersect_sorted_two_pointer(&queries).len());
    let gallop_s = best_seconds(|| database.intersect_sorted(&queries).len());

    // Counting fixture: a synthetic community's read set.
    let community = CommunityConfig::preset(Diversity::Medium)
        .with_reads(READS)
        .with_database_species(12)
        .build(7);
    let reads = community.sample().reads();
    let counted = KmerCounts::count(reads, K);
    parity &= counted.entries() == count_btreemap(reads, K).as_slice();
    let count_occurrences = counted.total_occurrences();
    let count_btreemap_s = best_seconds(|| count_btreemap(reads, K).len());
    let count_sort_s = best_seconds(|| KmerCounts::count(reads, K).len());

    // Build fixture: small enough to iterate the whole build per trial
    // (the intersection fixture is deliberately oversized for that).
    let build_refs = ReferenceCollection::synthetic(BUILD_GENOMES, BUILD_GENOME_LEN, 4242);
    let build_inputs: u64 = build_refs
        .genomes()
        .iter()
        .map(|g| KmerExtractor::new(g.sequence(), K).count() as u64)
        .sum();
    let reference_build = build_btreemap(&build_refs, K);
    let columnar_build = SortedKmerDatabase::build(&build_refs, K);
    parity &= reference_build.len() == columnar_build.len()
        && columnar_build
            .entries()
            .zip(&reference_build)
            .all(|(entry, (kmer, taxa))| entry.kmer == *kmer && entry.taxa == taxa.as_slice());
    let build_btreemap_s = best_seconds(|| build_btreemap(&build_refs, K).len());
    let build_columnar_s = best_seconds(|| SortedKmerDatabase::build(&build_refs, K).len());

    // Shard residency: zero-copy views must keep one storage copy at every
    // shard count.
    let db_heap_bytes = database.storage().heap_bytes();
    let resident_by_shards = [1usize, 2, 4, 8]
        .iter()
        .map(|&shards| (shards, ShardSet::build(&database, shards).resident_bytes()))
        .collect();

    HotpathMeasurement {
        db_entries: database.len(),
        db_associations: database.storage().association_count(),
        queries: queries.len(),
        count_occurrences,
        build_inputs,
        two_pointer_s,
        gallop_s,
        count_btreemap_s,
        count_sort_s,
        build_btreemap_s,
        build_columnar_s,
        db_heap_bytes,
        resident_by_shards,
        parity,
    }
}

/// Hot-path analysis: measures the flattened kernels against their
/// pre-refactor baselines and renders the report (what
/// `cargo run -p megis-bench --bin hotpath` prints; the binary additionally
/// writes `BENCH_hotpath.json`).
pub fn hotpath() -> String {
    hotpath_measure().report()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hotpath_confirms_parity_and_zero_copy() {
        let m = super::hotpath_measure();
        assert!(m.parity, "refactored kernels must reproduce the baselines");
        assert!(
            m.zero_copy_confirmed(),
            "sharding must keep one resident database copy: {:?} vs {}",
            m.resident_by_shards,
            m.db_heap_bytes
        );
        let report = m.report();
        assert!(report.contains("parity with two-pointer reference: identical"));
        assert!(report.contains("zero-copy shards: confirmed"));
        let json = m.to_json();
        assert!(json.contains("\"bench\": \"hotpath\""));
        assert!(json.contains("\"zero_copy_confirmed\": true"));
        // The wall-clock speedup verdict is deliberately NOT asserted
        // here: a timing ratio inside the general test suite would flake on
        // loaded machines. The release-mode CI smoke step runs the `hotpath`
        // bin as a dedicated step and greps the verdict line, so the >= 2x
        // property stays enforced where a failure is attributable.
        if !m.gallop_confirmed() {
            eprintln!(
                "warning: galloping speedup {:.2}x below the 2x threshold in \
                 this (possibly debug/loaded) run",
                m.gallop_speedup()
            );
        }
    }
}
