//! Engine-driven counterparts of the scaling figures: Fig. 15 (multi-SSD
//! sharding) and Fig. 21 (multi-sample batching) executed by the real
//! `megis-sched` batch engine instead of the analytic models alone, plus a
//! service-mode analysis sweeping offered load against latency.
//!
//! Each experiment runs a functional batch on synthetic data — checking that
//! the engine's results stay byte-identical to the sequential analyzer — and
//! pairs the measured operational metrics with the paper-scale modeled-time
//! account for the same batch shape.

use std::time::{Duration, Instant};

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_host::accelerators::SortingAccelerator;
use megis_host::system::SystemConfig;
use megis_sched::{
    BatchEngine, EngineConfig, JobSpec, ModeledAccount, SchedPolicy, StreamingEngine,
};
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::workload::WorkloadSpec;

use crate::report::Report;

fn cohort(n: usize) -> (MegisAnalyzer, Vec<Sample>) {
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(80)
        .with_database_species(12);
    let reference_community = base.build(2024);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    // Same references (seed 2024), independent read streams: a real cohort
    // sharing one database.
    let samples = (0..n)
        .map(|i| {
            base.build_cohort_sample(2024, 3000 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

fn specs(samples: &[Sample]) -> Vec<JobSpec> {
    samples
        .iter()
        .enumerate()
        .map(|(i, s)| JobSpec::new(format!("sample-{i}"), s.clone()))
        .collect()
}

/// Fig. 15 (engine path): the batch engine with the database sharded across
/// 1/2/4/8 simulated SSDs — functional parity against the sequential
/// analyzer, measured shard utilization, and the modeled intersection-phase
/// scaling.
pub fn fig15_sharded_engine() -> String {
    let mut report = Report::new();
    report.title("Figure 15 (engine): sharded multi-SSD execution via megis-sched");
    let (analyzer, samples) = cohort(6);
    let expected: Vec<_> = samples.iter().map(|s| analyzer.analyze(s)).collect();

    report.table_header(&["shards", "parity", "modeled x", "util avg", "samples/s"]);
    let mut all_parity = true;
    for shards in [1usize, 2, 4, 8] {
        let mut engine = BatchEngine::new(
            analyzer.clone(),
            EngineConfig::new().with_workers(2).with_shards(shards),
        );
        engine.submit_all(specs(&samples)).expect("admission");
        let run = engine.run();
        let parity = run
            .results
            .iter()
            .zip(&expected)
            .all(|(r, e)| r.output == *e);
        all_parity &= parity;
        let util = run.shard_utilization();
        let util_avg = util.iter().sum::<f64>() / util.len() as f64;
        let modeled = run
            .modeled
            .as_ref()
            .expect("non-empty batch has an account");
        report.table_row(
            &shards.to_string(),
            &[
                if parity { 1.0 } else { 0.0 },
                modeled.shard_speedup(),
                util_avg,
                run.throughput,
            ],
        );
    }
    report.line("");
    report.line(&format!(
        "parity with sequential analyzer: {}",
        if all_parity { "identical" } else { "DIVERGED" }
    ));
    report.line("parity = 1: every sharded result byte-identical to the sequential analyzer.");
    report.line("modeled x: paper-scale intersection-phase speedup over one SSD — near-linear,");
    report.line("matching Fig. 15's disjoint database partitioning across devices.");
    report.finish()
}

/// Fig. 21 (engine path): multi-sample batches through the engine — measured
/// latency distribution and throughput for the functional batch, alongside
/// the paper-scale pipelined-vs-independent account (256 GB DRAM + sorting
/// accelerator, the figure's configuration).
pub fn fig21_batch_engine() -> String {
    let mut report = Report::new();
    report.title("Figure 21 (engine): multi-sample batch scheduling via megis-sched");
    let fig21_system = SystemConfig::reference(SsdConfig::ssd_c())
        .with_dram_capacity(ByteSize::from_gb(256.0))
        .with_sorting_accelerator(SortingAccelerator::default());
    let workload = WorkloadSpec::cami(Diversity::Medium);

    report.section("modeled account (paper scale)");
    report.table_header(&["samples", "indep (h)", "piped (h)", "speedup"]);
    for samples in [1usize, 4, 8, 16] {
        let acct = ModeledAccount::compute(&fig21_system, &workload, samples, 1);
        report.table_row(
            &samples.to_string(),
            &[
                acct.independent_total().as_secs() / 3600.0,
                acct.pipelined_total().as_secs() / 3600.0,
                acct.pipelining_speedup(),
            ],
        );
    }

    report.section("functional batch (16 samples, 2 workers, 2 shards, priority policy)");
    let (analyzer, samples) = cohort(16);
    let expected: Vec<_> = samples.iter().map(|s| analyzer.analyze(s)).collect();
    let mut engine = BatchEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(2)
            .with_policy(SchedPolicy::Priority)
            .with_system(fig21_system),
    );
    engine.submit_all(specs(&samples)).expect("admission");
    let run = engine.run();
    let parity = run
        .results
        .iter()
        .zip(&expected)
        .all(|(r, e)| r.output == *e);
    report.line(&format!(
        "parity with sequential analyzer: {}",
        if parity { "identical" } else { "DIVERGED" }
    ));
    report.line(&format!(
        "throughput {:.2} samples/s; latency p50 {:.1} ms, p99 {:.1} ms",
        run.throughput,
        run.latency.p50.as_secs_f64() * 1e3,
        run.latency.p99.as_secs_f64() * 1e3,
    ));
    report.line("");
    report.line("Paper: buffering k-mers across samples streams the database once per group,");
    report.line("so pipelined modeled time stays strictly below independent runs (Fig. 21).");
    report.finish()
}

/// Streaming-load analysis (service mode): the `megis-sched` streaming
/// engine under paced open-loop arrivals. The sweep calibrates the mean
/// per-sample service time, then offers load at a fraction/multiple of the
/// single-worker service capacity and reports the rolling-window latency
/// distribution. Below saturation the p99 tracks the service time; at and
/// above it, queueing delay dominates the tail — the capacity-planning view
/// a front end needs before putting the engine behind a network service.
pub fn streaming_load_analysis() -> String {
    let mut report = Report::new();
    report.title("Streaming-load analysis: offered load vs. latency (megis-sched service mode)");
    let (analyzer, samples) = cohort(8);

    // Calibrate: mean sequential service time per sample on this host.
    let t0 = Instant::now();
    for sample in &samples {
        let _ = analyzer.analyze(sample);
    }
    let service_time = t0.elapsed() / samples.len() as u32;
    report.line(&format!(
        "calibrated mean service time: {:.2} ms/sample (single worker)",
        service_time.as_secs_f64() * 1e3,
    ));
    report.line("");

    report.table_header(&["offered", "p50 ms", "p99 ms", "max ms", "samples/s"]);
    // Offered load relative to one worker's capacity: inter-arrival gap =
    // service_time / load. 2.0x overloads the service, so latency must grow
    // with queue depth; 0.5x leaves headroom, so latency stays near the
    // bare service time.
    for load in [0.5f64, 1.0, 2.0] {
        let engine = StreamingEngine::new(
            analyzer.clone(),
            EngineConfig::new()
                .with_workers(1)
                .with_shards(2)
                .with_metrics_window(64),
        );
        let gap = Duration::from_secs_f64(service_time.as_secs_f64() / load);
        let handles: Vec<_> = samples
            .iter()
            .enumerate()
            .map(|(i, sample)| {
                let handle = engine
                    .submit(JobSpec::new(format!("s{i}"), sample.clone()))
                    .expect("admission");
                std::thread::sleep(gap);
                handle
            })
            .collect();
        engine.drain();
        let snapshot = engine.snapshot();
        report.table_row(
            &format!("{load:.2}x"),
            &[
                snapshot.window.p50.as_secs_f64() * 1e3,
                snapshot.window.p99.as_secs_f64() * 1e3,
                snapshot.window.max.as_secs_f64() * 1e3,
                snapshot.window_throughput,
            ],
        );
        let served = engine.shutdown().completed;
        assert_eq!(served, handles.len() as u64);
        drop(handles);
    }
    report.line("");
    report.line("offered = arrival rate relative to one worker's service capacity. Above");
    report.line("1.0x the queue grows for the whole run, so tail latency reflects queueing");
    report.line("delay rather than service time (completions served in policy order).");
    report.finish()
}

#[cfg(test)]
mod tests {
    #[test]
    fn engine_reports_confirm_parity() {
        for report in [super::fig15_sharded_engine(), super::fig21_batch_engine()] {
            assert!(report.contains("parity with sequential analyzer: identical"));
            assert!(!report.contains("DIVERGED"));
        }
    }

    #[test]
    fn streaming_load_report_covers_the_sweep() {
        let report = super::streaming_load_analysis();
        assert!(report.contains("calibrated mean service time"));
        for load in ["0.50x", "1.00x", "2.00x"] {
            assert!(report.contains(load), "missing load point {load}");
        }
    }
}
