//! Accuracy analysis (§5): F1 score and L1 abundance error of the
//! performance-optimized baseline, the accuracy-optimized baseline, and MegIS
//! on synthetic communities — demonstrating that MegIS matches the
//! accuracy-optimized tool exactly while the performance-optimized tool (built
//! from a sampled genome collection) trails both.

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::metrics::{AbundanceError, ClassificationMetrics};
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_tools::kraken::KrakenClassifier;
use megis_tools::metalign::MetalignClassifier;
use megis_tools::timing::geometric_mean;

use crate::report::Report;

/// Runs the functional accuracy comparison across the three diversity presets.
pub fn accuracy_analysis() -> String {
    let mut report = Report::new();
    report.title("Accuracy analysis (functional run on synthetic communities)");
    report.line("P-Opt is built from a subsampled (poorer) genome collection, mirroring the");
    report.line("smaller default database of the performance-optimized tool; A-Opt and MegIS");
    report.line("use the full collection and identical sketches/thresholds.");

    report.table_header(&["read set", "tool", "F1", "recall", "precision", "L1 err"]);
    let mut f1_ratios = Vec::new();
    let mut l1_gaps = Vec::new();

    for (diversity, seed) in [
        (Diversity::Low, 101u64),
        (Diversity::Medium, 102),
        (Diversity::High, 103),
    ] {
        let community = CommunityConfig::preset(diversity)
            .with_reads(600)
            .with_database_species(32)
            .build(seed);
        let config = MegisConfig::small();
        let truth_presence = community.truth_presence();
        let truth_profile = community.truth_profile();

        let megis = MegisAnalyzer::build(community.references(), config);
        let metalign = MetalignClassifier::build(community.references(), config.sketch);
        let kraken = KrakenClassifier::build(&community.references().subsample(2), 21);

        let megis_out = megis.analyze(community.sample());
        let metalign_out = metalign.analyze(community.sample().reads());
        let kraken_out = kraken.classify(community.sample().reads());

        for (tool, presence, abundance) in [
            ("P-Opt", &kraken_out.presence, &kraken_out.abundance),
            ("A-Opt", &metalign_out.presence, &metalign_out.abundance),
            ("MegIS", &megis_out.presence, &megis_out.abundance),
        ] {
            let m = ClassificationMetrics::score(presence, &truth_presence);
            let l1 = AbundanceError::score(abundance, truth_profile).l1_norm;
            report.table_row_text(&[
                diversity.label(),
                tool,
                &format!("{:.3}", m.f1()),
                &format!("{:.3}", m.recall()),
                &format!("{:.3}", m.precision()),
                &format!("{:.3}", l1),
            ]);
        }

        let kraken_f1 = ClassificationMetrics::score(&kraken_out.presence, &truth_presence).f1();
        let megis_f1 = ClassificationMetrics::score(&megis_out.presence, &truth_presence).f1();
        if kraken_f1 > 0.0 {
            f1_ratios.push(megis_f1 / kraken_f1);
        }
        let kraken_l1 = AbundanceError::score(&kraken_out.abundance, truth_profile).l1_norm;
        let megis_l1 = AbundanceError::score(&megis_out.abundance, truth_profile).l1_norm;
        if kraken_l1 > 0.0 {
            l1_gaps.push((kraken_l1 - megis_l1) / kraken_l1 * 100.0);
        }

        assert_eq!(
            megis_out.presence, metalign_out.presence,
            "MegIS must match the accuracy-optimized baseline exactly"
        );
    }

    report.section("Summary");
    if !f1_ratios.is_empty() {
        report.line(&format!(
            "MegIS / P-Opt F1 ratio (gmean): {:.2}x   (paper: A-Opt achieves 4.6-5.2x higher F1)",
            geometric_mean(&f1_ratios)
        ));
    }
    if !l1_gaps.is_empty() {
        let avg = l1_gaps.iter().sum::<f64>() / l1_gaps.len() as f64;
        report.line(&format!(
            "L1 abundance error reduction vs P-Opt: {avg:.0}%   (paper: 3-24% lower L1 error)"
        ));
    }
    report.line("MegIS's presence and abundance outputs are identical to the A-Opt baseline's");
    report.line("on every read set (asserted while generating this report).");
    report.finish()
}
