//! Step 3 scaling sweep: partitioned unified-index generation and read
//! mapping across 1 → 8 devices.
//!
//! MegIS §4.4 (Fig. 9) generates the unified reference index *inside the
//! SSD* and hands mapping to per-device accelerators; `megis-sched` now
//! partitions the candidate list into contiguous taxid ranges and runs
//! `step3::run_partial` per device. This experiment measures that
//! decomposition directly: one sample's full Step 3 — partition →
//! per-device partial index merge + mapping (one thread per device) →
//! reduce — swept over 1, 2, 4, and 8 devices.
//!
//! Like the `queue_depth_sweep`, the sweep runs **device-bound**: each
//! device thread first sleeps a simulated index-stream time proportional to
//! its candidate range (the per-candidate reference index streamed and
//! merged at internal bandwidth, which at paper scale dwarfs the in-memory
//! merge the functional kernel computes), then does the functional work.
//! The simulated streams genuinely overlap across devices even on a
//! single-core host, so the sweep measures the *structural* effect of the
//! partitioning — each device streams only its range — rather than the host
//! machine's core count. The functional outputs are simultaneously checked
//! byte-for-byte against the sequential `step3::run` oracle.
//!
//! A second, *traced* pass runs the same workload through the streaming
//! engine at the widest device count with the pipeline trace enabled
//! ([`megis_sched::EngineConfig::with_tracing`]): the straggler analyzer
//! then names, per job, the device whose last Step 3 completion gated the
//! reduce, reports each device's busy/stall/idle split and Step 3 busy
//! time with the max/min skew, and cross-checks every job's
//! [`megis_sched::StageBreakdown`] against its independently measured
//! end-to-end latency. That per-device skew measurement is the input the
//! cost-aware-partitioning roadmap item needs — today's equal-count
//! partition leaves the reduce waiting on whichever device drew the larger
//! candidate ranges.
//!
//! The `step3_scaling` binary prints both reports and writes the numbers to
//! `BENCH_step3.json` (`--out`) and the raw event log to
//! `BENCH_step3_trace.json` (`--trace-out`); CI runs it in release mode,
//! greps the parity/scaling verdicts and the straggler-report header, and
//! uploads both JSON records.

use std::time::{Duration, Instant};

use megis::config::MegisConfig;
use megis::step3;
use megis::MegisAnalyzer;
use megis_genomics::database::ReferenceIndex;
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_sched::{EngineConfig, JobSpec, StreamingEngine};

use crate::report::Report;

/// Device counts swept.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Trials per device count; the best trial is reported.
const TRIALS: usize = 2;
/// Reads per sample: enough coverage that Step 2's support threshold
/// reports a deep candidate list, light enough that the simulated index
/// stream still dominates the pass.
const READS: usize = 600;
/// Species present in the sample (the candidate pool Step 2 reports).
const SPECIES: usize = 16;
/// Species in the reference database.
const DATABASE_SPECIES: usize = 24;
/// Simulated device time to stream and merge one candidate's reference
/// index into the partial unified index — multi-millisecond at paper scale,
/// and deliberately larger than the host-side functional work here so the
/// sweep runs device-bound (the same convention as the queue-depth sweep's
/// per-command device service). The single-device pass streams all ~15
/// candidates serially; an 8-device pass streams at most 2 per device in
/// parallel, which is the structural win the sweep measures.
const STREAM_PER_CANDIDATE: Duration = Duration::from_millis(10);
/// Jobs the traced streaming pass pushes through the engine.
const TRACE_JOBS: usize = 6;
/// Devices in the traced streaming pass (the widest swept count).
const TRACE_SHARDS: usize = 8;
/// Per-candidate simulated Step 3 device time in the traced pass
/// ([`EngineConfig::with_step3_item_latency`]): the engine-side analogue of
/// [`STREAM_PER_CANDIDATE`], sized so per-device Step 3 busy time reflects
/// candidate-count skew without making the pass slow.
const TRACE_STEP3_ITEM: Duration = Duration::from_millis(5);
/// Simulated per-command device service time in the traced pass.
const TRACE_DEVICE: Duration = Duration::from_millis(2);
/// Tolerated relative disagreement between a job's trace-derived
/// [`megis_sched::StageBreakdown`] total and its independently measured
/// end-to-end latency.
pub const CLOSURE_GATE: f64 = 0.01;

/// Everything the sweep measured; the binary serializes it as
/// `BENCH_step3.json`.
#[derive(Debug, Clone)]
pub struct Step3ScalingMeasurement {
    /// Candidate species Step 2 reported for the sample.
    pub candidates: usize,
    /// Reads mapped per pass.
    pub reads: usize,
    /// Reads that mapped to some candidate.
    pub mapped_reads: u64,
    /// `(devices, seconds per full Step 3 pass, best trial)` per swept count.
    pub seconds_by_shards: Vec<(usize, f64)>,
    /// Whether every partitioned output was byte-identical to the
    /// sequential oracle (unified index entries + offsets, abundance
    /// profile, mapped-read count).
    pub parity: bool,
}

impl Step3ScalingMeasurement {
    /// Step 3 throughput (reads mapped through the stage per second) at a
    /// swept device count.
    pub fn throughput(&self, shards: usize) -> f64 {
        self.seconds_by_shards
            .iter()
            .find(|(s, _)| *s == shards)
            .map(|(_, secs)| self.reads as f64 / secs)
            .unwrap_or(0.0)
    }

    /// Speedup of a device count over the single-device baseline.
    pub fn speedup(&self, shards: usize) -> f64 {
        self.throughput(shards) / self.throughput(1)
    }

    /// The CI verdict: every multi-device count strictly beats one device.
    pub fn scaling_confirmed(&self) -> bool {
        self.seconds_by_shards
            .iter()
            .filter(|(s, _)| *s > 1)
            .all(|(s, _)| self.speedup(*s) > 1.0)
    }

    /// Renders the plain-text report with the greppable verdict lines.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title("Step 3 scaling analysis: partitioned unified-index generation and mapping");
        report.line(&format!(
            "{} candidate species, {} reads; simulated index stream {} ms per candidate; \
             best of {TRIALS} trials per device count",
            self.candidates,
            self.reads,
            STREAM_PER_CANDIDATE.as_millis(),
        ));
        report.line("");
        report.table_header(&["devices", "ms/pass", "reads/s", "speedup"]);
        for (shards, secs) in &self.seconds_by_shards {
            report.table_row(
                &shards.to_string(),
                &[secs * 1e3, self.throughput(*shards), self.speedup(*shards)],
            );
        }
        report.line("");
        report.line(&format!(
            "parity with sequential step 3: {}",
            if self.parity { "identical" } else { "DIVERGED" }
        ));
        report.line(&format!(
            "shard scaling: {} (multi-device throughput vs 1 device, {} reads mapped)",
            if self.scaling_confirmed() {
                "confirmed"
            } else {
                "NOT OBSERVED"
            },
            self.mapped_reads,
        ));
        report.line("");
        report.line("Each device streams and merges only its contiguous candidate range into a");
        report.line("partial unified index and maps the reads against it; the reduce recombines");
        report.line("the partials byte-identically and resolves multi-device read hits by the");
        report.line("same best-hit rule as the sequential mapper. Partitioning divides the");
        report.line("dominant per-device index stream, so the stage's critical path shrinks");
        report.line("near-linearly in the device count.");
        report.finish()
    }

    /// Serializes the measurement as the `BENCH_step3.json` record.
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .seconds_by_shards
            .iter()
            .map(|(shards, secs)| {
                format!(
                    "    {{ \"shards\": {shards}, \"us_per_pass\": {:.3}, \
                     \"reads_per_s\": {:.3}, \"speedup\": {:.4} }}",
                    secs * 1e6,
                    self.throughput(*shards),
                    self.speedup(*shards),
                )
            })
            .collect();
        format!(
            "{{\n\
             \x20 \"bench\": \"step3_scaling\",\n\
             \x20 \"candidates\": {},\n\
             \x20 \"reads\": {},\n\
             \x20 \"mapped_reads\": {},\n\
             \x20 \"stream_ms_per_candidate\": {},\n\
             \x20 \"parity\": {},\n\
             \x20 \"scaling_confirmed\": {},\n\
             \x20 \"series\": [\n{}\n\x20 ]\n\
             }}\n",
            self.candidates,
            self.reads,
            self.mapped_reads,
            STREAM_PER_CANDIDATE.as_millis(),
            self.parity,
            self.scaling_confirmed(),
            series.join(",\n"),
        )
    }
}

/// The candidate-rich fixture both passes analyze: Step 2's actual
/// presence call on a diverse community decides the candidate list, exactly
/// as the engine's completer does.
fn fixture_community() -> megis_genomics::sample::Community {
    CommunityConfig::preset(Diversity::Medium)
        .with_reads(READS)
        .with_species(SPECIES)
        .with_database_species(DATABASE_SPECIES)
        .build(4242)
}

/// Runs the sweep and returns the raw measurement.
pub fn step3_scaling_measure() -> Step3ScalingMeasurement {
    let community = fixture_community();
    let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
    let presence = analyzer.identify_presence(community.sample()).presence;
    let candidates = analyzer.candidate_indexes(&presence);
    let mapping_k = analyzer.config().mapping_k;
    let reads = community.sample().reads();

    // Sequential oracle: one merge, one mapping pass, no partition/reduce.
    let owned: Vec<ReferenceIndex> = candidates.iter().map(|c| (*c).clone()).collect();
    let oracle = step3::run(reads, &owned, mapping_k);

    let mut parity = true;
    let mut seconds_by_shards = Vec::new();
    for shards in SHARD_COUNTS {
        let mut best = f64::INFINITY;
        for _ in 0..TRIALS {
            let start = Instant::now();
            let partition = step3::partition_candidates(&candidates, shards);
            let partials: Vec<step3::Step3Partial> = std::thread::scope(|scope| {
                let handles: Vec<_> = partition
                    .iter()
                    .map(|part| {
                        let range = part.range.clone();
                        let base = part.base_offset;
                        let slice = &candidates[range.clone()];
                        scope.spawn(move || {
                            // Simulated device service: stream each
                            // candidate's reference index off the medium
                            // and through the merge unit.
                            if !range.is_empty() {
                                std::thread::sleep(STREAM_PER_CANDIDATE * range.len() as u32);
                            }
                            step3::run_partial(reads, slice, base, mapping_k)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let reduced = step3::reduce(partials);
            best = best.min(start.elapsed().as_secs_f64());
            parity &= reduced == oracle
                && reduced.unified_index.entries() == oracle.unified_index.entries()
                && reduced.unified_index.offsets() == oracle.unified_index.offsets();
        }
        seconds_by_shards.push((shards, best));
    }

    Step3ScalingMeasurement {
        candidates: candidates.len(),
        reads: reads.len(),
        mapped_reads: oracle.mapped_reads,
        seconds_by_shards,
        parity,
    }
}

/// Step 3 scaling analysis: runs the sweep and renders the report (what
/// `cargo run -p megis-bench --bin step3_scaling` prints; the binary
/// additionally writes `BENCH_step3.json`).
pub fn step3_scaling() -> String {
    step3_scaling_measure().report()
}

/// What the traced streaming pass observed; the binary renders
/// [`Step3TraceMeasurement::report`] and writes
/// [`Step3TraceMeasurement::trace_json`] as `BENCH_step3_trace.json`.
#[derive(Debug, Clone)]
pub struct Step3TraceMeasurement {
    /// Jobs pushed through the traced engine.
    pub jobs: usize,
    /// Devices in the traced array.
    pub shards: usize,
    /// `(job id, trace-derived breakdown total, measured latency)` per job,
    /// in delivery order.
    pub closures: Vec<(u64, Duration, Duration)>,
    /// Mean per-job stage breakdown over the pass, rendered.
    pub mean_breakdown_line: String,
    /// The straggler analyzer's rendered report (per-device busy/stall/idle,
    /// Step 3 busy skew, per-job gating device, gating histogram).
    pub straggler_text: String,
    /// Max/min per-device Step 3 busy time across the array.
    pub step3_busy_skew: f64,
    /// The raw event log, serialized (`BENCH_step3_trace.json`).
    pub trace_json: String,
}

impl Step3TraceMeasurement {
    /// Worst relative disagreement between any job's breakdown total and
    /// its measured end-to-end latency.
    pub fn max_closure_error(&self) -> f64 {
        self.closures
            .iter()
            .map(|(_, total, latency)| {
                let latency = latency.as_secs_f64().max(1e-9);
                (total.as_secs_f64() - latency).abs() / latency
            })
            .fold(0.0, f64::max)
    }

    /// The verdict: every job's breakdown telescopes to its measured
    /// latency within [`CLOSURE_GATE`].
    pub fn closure_confirmed(&self) -> bool {
        !self.closures.is_empty() && self.max_closure_error() < CLOSURE_GATE
    }

    /// Renders the traced-pass report; the straggler-report header inside
    /// it is the stable line CI greps.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title("Traced step 3 pass: stage breakdown and straggler analysis");
        report.line(&format!(
            "{} jobs through the streaming engine at {} devices, pipeline trace on; \
             simulated device service {} ms/command + {} ms per step-3 candidate",
            self.jobs,
            self.shards,
            TRACE_DEVICE.as_millis(),
            TRACE_STEP3_ITEM.as_millis(),
        ));
        report.line("");
        report.line(&format!(
            "stage breakdown (mean over {} jobs): {}",
            self.jobs, self.mean_breakdown_line
        ));
        for (job, total, latency) in &self.closures {
            report.line(&format!(
                "  job#{job}: breakdown total {:.1} ms vs measured latency {:.1} ms",
                total.as_secs_f64() * 1e3,
                latency.as_secs_f64() * 1e3,
            ));
        }
        report.line(&format!(
            "breakdown closure: {} (max |breakdown - latency| / latency = {:.3}%, gate {:.0}%)",
            if self.closure_confirmed() {
                "confirmed"
            } else {
                "VIOLATED"
            },
            self.max_closure_error() * 100.0,
            CLOSURE_GATE * 100.0,
        ));
        report.line("");
        for line in self.straggler_text.lines() {
            report.line(line);
        }
        report.line("");
        report.line("Equal-count candidate partitioning hands some devices one more candidate");
        report.line("range than others, so their Step 3 busy time — and with it the job's reduce");
        report.line("barrier — is gated by the devices at the top of the skew. The gating-device");
        report.line("histogram above is the measurement the cost-aware partitioning work item");
        report.line("consumes: a cost-proportional split would flatten it.");
        report.finish()
    }
}

/// Runs the traced streaming pass and returns what the trace observed.
pub fn step3_trace_measure() -> Step3TraceMeasurement {
    let community = fixture_community();
    let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
    let engine = StreamingEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(TRACE_SHARDS)
            .with_device_latency(TRACE_DEVICE)
            .with_step3_item_latency(TRACE_STEP3_ITEM)
            .with_tracing(),
    );
    let handles: Vec<_> = (0..TRACE_JOBS)
        .map(|i| {
            engine
                .submit(JobSpec::new(
                    format!("traced-{i}"),
                    community.sample().clone(),
                ))
                .expect("admission")
        })
        .collect();
    let mut closures = Vec::new();
    for handle in handles {
        let result = handle.wait().expect("job served");
        let breakdown = result
            .breakdown
            .expect("tracing is on, so every job carries a breakdown");
        closures.push((result.id.0, breakdown.total(), result.latency));
    }
    let report = engine.shutdown();
    let straggler = report
        .straggler
        .expect("tracing is on, so the report carries the straggler analysis");
    let trace = report
        .trace
        .expect("tracing is on, so the report carries the event log");
    let mean = report
        .stage_breakdown
        .expect("tracing is on, so the report carries the mean breakdown");
    Step3TraceMeasurement {
        jobs: TRACE_JOBS,
        shards: TRACE_SHARDS,
        closures,
        mean_breakdown_line: mean.summary_line(),
        straggler_text: straggler.report(),
        step3_busy_skew: straggler.step3_busy_skew(),
        trace_json: trace.to_json(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn step3_scaling_confirms_parity() {
        let m = super::step3_scaling_measure();
        assert!(
            m.parity,
            "partitioned step 3 must reproduce the sequential oracle"
        );
        assert!(
            m.candidates >= 8,
            "fixture needs a partitionable candidate set"
        );
        assert!(m.mapped_reads > 0);
        let report = m.report();
        assert!(report.contains("parity with sequential step 3: identical"));
        let json = m.to_json();
        assert!(json.contains("\"bench\": \"step3_scaling\""));
        assert!(json.contains("\"parity\": true"));
        // The wall-clock scaling verdict is asserted in release only: the
        // sweep is device-bound by construction (simulated index streams
        // overlap even on one core), but a debug-profile functional merge
        // can swamp the stream times. The release-mode CI smoke step runs
        // the bin and greps the verdict, so the property stays enforced
        // where a failure is attributable.
        #[cfg(not(debug_assertions))]
        assert!(
            m.scaling_confirmed(),
            "multi-device step 3 must beat one device:\n{report}"
        );
    }

    #[test]
    fn traced_pass_closes_breakdowns_and_names_gating_devices() {
        let m = super::step3_trace_measure();
        assert_eq!(m.closures.len(), super::TRACE_JOBS);
        // Closure is a consistency property between two independent
        // measurements of the same wall clock, not a speed property, so it
        // holds in debug builds too (slower jobs only shrink the relative
        // error).
        assert!(
            m.closure_confirmed(),
            "stage breakdowns must telescope to the measured latency:\n{}",
            m.report()
        );
        assert!(m.step3_busy_skew >= 1.0);
        let report = m.report();
        assert!(report
            .contains("straggler report: per-device busy/stall/idle and per-job step-3 gating"));
        // Every device line, every job's gating entry, and the histogram
        // must be present for the widest array.
        for device in 0..super::TRACE_SHARDS {
            assert!(report.contains(&format!("device {device}:")), "{report}");
        }
        assert!(
            report.contains("reduce gated by: [job seq 0 -> device"),
            "{report}"
        );
        assert!(report.contains("gating-device histogram:"), "{report}");
        assert!(m.trace_json.contains("\"trace\""));
    }
}
