//! Step 3 scaling sweep: cost-aware partitioned unified-index generation
//! and read mapping across 1 → 8 devices, on a skewed candidate workload.
//!
//! MegIS §4.4 (Fig. 9) generates the unified reference index *inside the
//! SSD* and hands mapping to per-device accelerators; `megis-sched`
//! partitions the candidate list into contiguous taxid ranges by **modeled
//! cost** (`step3::partition_candidates` weighs each candidate by its index
//! stream bytes plus expected mapping work) and runs `step3::run_partial`
//! per device. This experiment measures that decomposition in the regime
//! that exposed the old equal-count cliff: a **skewed** candidate pool —a
//! few giant reference indexes among many small ones — where splitting by
//! item *count* loads some devices with several times the stream volume of
//! others and the slowest device gates the reduce.
//!
//! Like the `queue_depth_sweep`, the sweep runs **device-bound**: each
//! device thread first sleeps a simulated index-stream time proportional to
//! its partition's *modeled cost* (the per-candidate reference index
//! streamed and merged at internal bandwidth, which at paper scale dwarfs
//! the in-memory merge the functional kernel computes), then does the
//! functional work. The simulated streams genuinely overlap across devices
//! even on a single-core host, so the sweep measures the *structural*
//! effect of the partitioning — each device streams only its cost share —
//! rather than the host machine's core count. The functional outputs are
//! simultaneously checked byte-for-byte against the sequential
//! `step3::run` oracle, and the verdict line CI greps asserts the speedup
//! is **strictly monotone** through 8 devices (the old count-based split
//! regressed past 4).
//!
//! A second, *traced* pass runs the same skewed workload through the
//! streaming engine at the widest device count with the pipeline trace and
//! work stealing enabled ([`megis_sched::EngineConfig::with_tracing`]):
//! the straggler analyzer names, per job, the device whose last Step 3
//! completion gated the reduce, reports each device's busy/stall/idle
//! split with the Step 3 busy skew, summarizes the gating-device histogram
//! as a single **flatness** figure
//! ([`megis_sched::StragglerReport::gating_histogram_flatness`]), counts
//! the candidate items idle devices stole from loaded peers, and
//! cross-checks every job's [`megis_sched::StageBreakdown`] against its
//! independently measured end-to-end latency. A flat histogram plus a
//! near-zero mean reduce barrier is the measured signature of the
//! cost-aware split and the incremental reduce doing their jobs.
//!
//! The `step3_scaling` binary prints both reports and writes the numbers to
//! `BENCH_step3.json` (`--out`) and the annotated event log — flatness,
//! skew, and mean reduce barrier alongside the raw events — to
//! `BENCH_step3_trace.json` (`--trace-out`); CI runs it in release mode,
//! greps the parity/monotone-scaling verdicts and the straggler-report
//! header, and uploads both JSON records.

use std::time::{Duration, Instant};

use megis::config::MegisConfig;
use megis::step3;
use megis::MegisAnalyzer;
use megis_genomics::database::ReferenceIndex;
use megis_genomics::dna::{Base, PackedSequence};
use megis_genomics::read::{Read, ReadSet};
use megis_genomics::reference::{ReferenceCollection, ReferenceGenome};
use megis_genomics::sample::Sample;
use megis_genomics::taxonomy::{TaxId, Taxonomy};
use megis_sched::{EngineConfig, JobSpec, StreamingEngine};

use crate::report::Report;

/// Device counts swept.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Trials per device count; the best trial is reported.
const TRIALS: usize = 2;
/// Species in the skewed reference pool (and, because the sample tiles
/// every genome with error-free reads, the Step 3 candidate count).
const CANDIDATES: usize = 24;
/// Every `GIANT_EVERY`-th species gets a giant genome; the rest are small.
/// 3 giants among 24 candidates lands one giant in most equal-count octile
/// ranges — the shape that used to gate the 8-device reduce.
const GIANT_EVERY: usize = 8;
/// Giant reference genome length in bases.
const GIANT_GENOME_LEN: usize = 4000;
/// Small reference genome length in bases.
const SMALL_GENOME_LEN: usize = 400;
/// Length of the error-free reads tiling each genome.
const READ_LEN: usize = 100;
/// Tiling stride; < `READ_LEN - k_max` so every k-mer of every genome
/// appears in some read and all species clear the presence thresholds.
const TILE_STRIDE: usize = 40;
/// Mean simulated device time to stream and merge one candidate's
/// reference index into the partial unified index — multi-millisecond at
/// paper scale, and deliberately larger than the host-side functional work
/// here so the sweep runs device-bound. Each device's actual sleep is this
/// value scaled by its partition's modeled cost share (a giant candidate
/// streams proportionally longer than a small one), so the sweep rewards a
/// cost-balanced split and punishes a count-balanced one — exactly like
/// real hardware.
const STREAM_PER_CANDIDATE: Duration = Duration::from_millis(10);
/// Jobs the traced streaming pass pushes through the engine.
const TRACE_JOBS: usize = 6;
/// Devices in the traced streaming pass (the widest swept count).
const TRACE_SHARDS: usize = 8;
/// Per-candidate-unit simulated Step 3 device time in the traced pass
/// ([`EngineConfig::with_step3_item_latency`]): the engine-side analogue of
/// [`STREAM_PER_CANDIDATE`], scaled by each command's cost share the same
/// way.
const TRACE_STEP3_ITEM: Duration = Duration::from_millis(5);
/// Simulated per-command device service time in the traced pass.
const TRACE_DEVICE: Duration = Duration::from_millis(2);
/// Tolerated relative disagreement between a job's trace-derived
/// [`megis_sched::StageBreakdown`] total and its independently measured
/// end-to-end latency.
pub const CLOSURE_GATE: f64 = 0.01;

/// Everything the sweep measured; the binary serializes it as
/// `BENCH_step3.json`.
#[derive(Debug, Clone)]
pub struct Step3ScalingMeasurement {
    /// Candidate species Step 2 reported for the sample.
    pub candidates: usize,
    /// Reads mapped per pass.
    pub reads: usize,
    /// Reads that mapped to some candidate.
    pub mapped_reads: u64,
    /// Max/min modeled per-candidate cost — how adversarial the workload's
    /// skew is (≈ 1 would be the old uniform fixture).
    pub cost_skew: f64,
    /// `(devices, seconds per full Step 3 pass, best trial)` per swept count.
    pub seconds_by_shards: Vec<(usize, f64)>,
    /// Whether every partitioned output was byte-identical to the
    /// sequential oracle (unified index entries + offsets, abundance
    /// profile, mapped-read count).
    pub parity: bool,
}

impl Step3ScalingMeasurement {
    /// Step 3 throughput (reads mapped through the stage per second) at a
    /// swept device count.
    pub fn throughput(&self, shards: usize) -> f64 {
        self.seconds_by_shards
            .iter()
            .find(|(s, _)| *s == shards)
            .map(|(_, secs)| self.reads as f64 / secs)
            .unwrap_or(0.0)
    }

    /// Speedup of a device count over the single-device baseline.
    pub fn speedup(&self, shards: usize) -> f64 {
        self.throughput(shards) / self.throughput(1)
    }

    /// The CI verdict: speedup strictly increases at every swept step —
    /// in particular 8 devices must beat 4, the step the old equal-count
    /// partition regressed on.
    pub fn scaling_confirmed(&self) -> bool {
        let speedups: Vec<f64> = self
            .seconds_by_shards
            .iter()
            .map(|(s, _)| self.speedup(*s))
            .collect();
        speedups.len() == SHARD_COUNTS.len() && speedups.windows(2).all(|w| w[1] > w[0])
    }

    /// Renders the plain-text report with the greppable verdict lines.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title(
            "Step 3 scaling analysis: cost-aware partitioned unified-index generation and mapping",
        );
        report.line(&format!(
            "{} candidate species (modeled cost skew {:.1}x), {} reads; simulated index \
             stream {} ms per mean candidate, scaled by each device's cost share; \
             best of {TRIALS} trials per device count",
            self.candidates,
            self.cost_skew,
            self.reads,
            STREAM_PER_CANDIDATE.as_millis(),
        ));
        report.line("");
        report.table_header(&["devices", "ms/pass", "reads/s", "speedup"]);
        for (shards, secs) in &self.seconds_by_shards {
            report.table_row(
                &shards.to_string(),
                &[secs * 1e3, self.throughput(*shards), self.speedup(*shards)],
            );
        }
        report.line("");
        report.line(&format!(
            "parity with sequential step 3: {}",
            if self.parity { "identical" } else { "DIVERGED" }
        ));
        report.line(&format!(
            "step3 monotone scaling: {} (speedup strictly increases 1 -> 2 -> 4 -> 8 \
             devices, {} reads mapped)",
            if self.scaling_confirmed() {
                "confirmed"
            } else {
                "NOT OBSERVED"
            },
            self.mapped_reads,
        ));
        report.line("");
        report.line("Each device streams and merges only its contiguous candidate range into a");
        report.line("partial unified index and maps the reads against it; the reduce recombines");
        report.line("the partials byte-identically and resolves multi-device read hits by the");
        report.line("same best-hit rule as the sequential mapper. The partitioner cuts the");
        report.line("candidate list by modeled cost (index stream bytes + expected mapping");
        report.line("work), so a giant reference index gets a device nearly to itself while");
        report.line("small ones share — the critical-path stream shrinks near-linearly in the");
        report.line("device count even on this skewed pool, where an equal-count split used to");
        report.line("regress past 4 devices.");
        report.finish()
    }

    /// Serializes the measurement as the `BENCH_step3.json` record.
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .seconds_by_shards
            .iter()
            .map(|(shards, secs)| {
                format!(
                    "    {{ \"shards\": {shards}, \"us_per_pass\": {:.3}, \
                     \"reads_per_s\": {:.3}, \"speedup\": {:.4} }}",
                    secs * 1e6,
                    self.throughput(*shards),
                    self.speedup(*shards),
                )
            })
            .collect();
        format!(
            "{{\n\
             \x20 \"bench\": \"step3_scaling\",\n\
             \x20 \"workload\": \"skewed\",\n\
             \x20 \"candidates\": {},\n\
             \x20 \"cost_skew\": {:.2},\n\
             \x20 \"reads\": {},\n\
             \x20 \"mapped_reads\": {},\n\
             \x20 \"stream_ms_per_candidate\": {},\n\
             \x20 \"parity\": {},\n\
             \x20 \"scaling_confirmed\": {},\n\
             \x20 \"series\": [\n{}\n\x20 ]\n\
             }}\n",
            self.candidates,
            self.cost_skew,
            self.reads,
            self.mapped_reads,
            STREAM_PER_CANDIDATE.as_millis(),
            self.parity,
            self.scaling_confirmed(),
            series.join(",\n"),
        )
    }
}

/// Deterministic pseudo-random base sequence (splitmix64 core), so the
/// fixture needs no external RNG dependency.
fn pseudo_bases(len: usize, seed: u64) -> PackedSequence {
    let mut state = seed;
    let mut seq = PackedSequence::with_capacity(len);
    for _ in 0..len {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        seq.push(Base::from_code((z & 3) as u8));
    }
    seq
}

/// The skewed fixture both passes analyze: [`CANDIDATES`] species whose
/// genome (and therefore reference index) sizes are adversarially skewed —
/// every [`GIANT_EVERY`]-th species is [`GIANT_GENOME_LEN`] bases, the rest
/// [`SMALL_GENOME_LEN`] — and a sample of error-free reads tiling every
/// genome densely enough that Step 2's actual presence call reports *all*
/// of them as candidates, exactly as the engine's completer sees it.
fn fixture_skewed() -> (ReferenceCollection, Sample) {
    let genera = CANDIDATES.div_ceil(8);
    let taxonomy = Taxonomy::synthetic(genera, 8);
    let mut genomes = Vec::with_capacity(CANDIDATES);
    let mut reads = ReadSet::new();
    for s in 0..CANDIDATES {
        let len = if s % GIANT_EVERY == 0 {
            GIANT_GENOME_LEN
        } else {
            SMALL_GENOME_LEN
        };
        let taxid = TaxId(1000 * (s as u32 / 8 + 1) + s as u32 % 8 + 1);
        let seq = pseudo_bases(len, 4242 + s as u64);
        let mut start = 0;
        let mut i = 0;
        while start + READ_LEN <= len {
            reads.push(Read::new(
                format!("r{s}-{i}"),
                seq.subsequence(start, READ_LEN),
            ));
            start += TILE_STRIDE;
            i += 1;
        }
        genomes.push(ReferenceGenome::new(taxid, format!("skewed s{s}"), seq));
    }
    (
        ReferenceCollection::new(genomes, taxonomy),
        Sample::from_reads(reads),
    )
}

/// Runs the sweep and returns the raw measurement.
pub fn step3_scaling_measure() -> Step3ScalingMeasurement {
    let (references, sample) = fixture_skewed();
    let analyzer = MegisAnalyzer::build(&references, MegisConfig::small());
    let presence = analyzer.identify_presence(&sample).presence;
    let candidates = analyzer.candidate_indexes(&presence);
    let mapping_k = analyzer.config().mapping_k;
    let reads = sample.reads();

    let costs: Vec<u64> = candidates
        .iter()
        .map(|c| step3::candidate_cost(c))
        .collect();
    let cost_skew = match (costs.iter().max(), costs.iter().min()) {
        (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
        _ => 1.0,
    };

    // Sequential oracle: one merge, one mapping pass, no partition/reduce.
    let owned: Vec<ReferenceIndex> = candidates.iter().map(|c| (*c).clone()).collect();
    let oracle = step3::run(reads, &owned, mapping_k);

    let mut parity = true;
    let mut seconds_by_shards = Vec::new();
    let n_candidates = candidates.len();
    for shards in SHARD_COUNTS {
        let mut best = f64::INFINITY;
        for _ in 0..TRIALS {
            let start = Instant::now();
            let partition = step3::partition_candidates(&candidates, shards);
            let total_cost: u64 = partition.iter().map(|p| p.cost).sum();
            let partials: Vec<step3::Step3Partial> = std::thread::scope(|scope| {
                let handles: Vec<_> = partition
                    .iter()
                    .map(|part| {
                        let range = part.range.clone();
                        let base = part.base_offset;
                        let cost = part.cost;
                        let slice = &candidates[range.clone()];
                        scope.spawn(move || {
                            // Simulated device service: stream this range's
                            // reference indexes off the medium and through
                            // the merge unit — time proportional to the
                            // range's modeled cost share, so skewed
                            // candidates cost what they would on hardware.
                            if !range.is_empty() && total_cost > 0 {
                                let units = cost as f64 * n_candidates as f64 / total_cost as f64;
                                std::thread::sleep(STREAM_PER_CANDIDATE.mul_f64(units));
                            }
                            step3::run_partial(reads, slice, base, mapping_k)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let reduced = step3::reduce(partials);
            best = best.min(start.elapsed().as_secs_f64());
            parity &= reduced == oracle
                && reduced.unified_index.entries() == oracle.unified_index.entries()
                && reduced.unified_index.offsets() == oracle.unified_index.offsets();
        }
        seconds_by_shards.push((shards, best));
    }

    Step3ScalingMeasurement {
        candidates: candidates.len(),
        reads: reads.len(),
        mapped_reads: oracle.mapped_reads,
        cost_skew,
        seconds_by_shards,
        parity,
    }
}

/// Step 3 scaling analysis: runs the sweep and renders the report (what
/// `cargo run -p megis-bench --bin step3_scaling` prints; the binary
/// additionally writes `BENCH_step3.json`).
pub fn step3_scaling() -> String {
    step3_scaling_measure().report()
}

/// What the traced streaming pass observed; the binary renders
/// [`Step3TraceMeasurement::report`] and writes
/// [`Step3TraceMeasurement::trace_json`] as `BENCH_step3_trace.json`.
#[derive(Debug, Clone)]
pub struct Step3TraceMeasurement {
    /// Jobs pushed through the traced engine.
    pub jobs: usize,
    /// Devices in the traced array.
    pub shards: usize,
    /// `(job id, trace-derived breakdown total, measured latency)` per job,
    /// in delivery order.
    pub closures: Vec<(u64, Duration, Duration)>,
    /// Mean per-job stage breakdown over the pass, rendered.
    pub mean_breakdown_line: String,
    /// Mean reduce-barrier segment over the pass — with the incremental
    /// reduce folding partials as they arrive, this should sit near zero.
    pub mean_reduce_barrier: Duration,
    /// The straggler analyzer's rendered report (per-device busy/stall/idle,
    /// Step 3 busy skew, per-job gating device, gating histogram).
    pub straggler_text: String,
    /// Max/min per-device Step 3 busy time across the array.
    pub step3_busy_skew: f64,
    /// Max/mean of the gating-device histogram (1.0 = perfectly flat, the
    /// device count = one device gated every reduce).
    pub gating_flatness: f64,
    /// Candidate items idle devices served from loaded peers' queues.
    pub stolen_items: u64,
    /// The annotated event log (`BENCH_step3_trace.json`): flatness, skew,
    /// and mean reduce barrier alongside the raw events.
    pub trace_json: String,
}

impl Step3TraceMeasurement {
    /// Worst relative disagreement between any job's breakdown total and
    /// its measured end-to-end latency.
    pub fn max_closure_error(&self) -> f64 {
        self.closures
            .iter()
            .map(|(_, total, latency)| {
                let latency = latency.as_secs_f64().max(1e-9);
                (total.as_secs_f64() - latency).abs() / latency
            })
            .fold(0.0, f64::max)
    }

    /// The verdict: every job's breakdown telescopes to its measured
    /// latency within [`CLOSURE_GATE`].
    pub fn closure_confirmed(&self) -> bool {
        !self.closures.is_empty() && self.max_closure_error() < CLOSURE_GATE
    }

    /// Renders the traced-pass report; the straggler-report header inside
    /// it is the stable line CI greps.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title("Traced step 3 pass: stage breakdown and straggler analysis");
        report.line(&format!(
            "{} jobs through the streaming engine at {} devices (work stealing on), \
             pipeline trace on; simulated device service {} ms/command + {} ms per \
             step-3 candidate cost unit",
            self.jobs,
            self.shards,
            TRACE_DEVICE.as_millis(),
            TRACE_STEP3_ITEM.as_millis(),
        ));
        report.line("");
        report.line(&format!(
            "stage breakdown (mean over {} jobs): {}",
            self.jobs, self.mean_breakdown_line
        ));
        for (job, total, latency) in &self.closures {
            report.line(&format!(
                "  job#{job}: breakdown total {:.1} ms vs measured latency {:.1} ms",
                total.as_secs_f64() * 1e3,
                latency.as_secs_f64() * 1e3,
            ));
        }
        report.line(&format!(
            "breakdown closure: {} (max |breakdown - latency| / latency = {:.3}%, gate {:.0}%)",
            if self.closure_confirmed() {
                "confirmed"
            } else {
                "VIOLATED"
            },
            self.max_closure_error() * 100.0,
            CLOSURE_GATE * 100.0,
        ));
        report.line("");
        for line in self.straggler_text.lines() {
            report.line(line);
        }
        report.line(&format!(
            "  gating-histogram flatness (max/mean): {:.2} (1.00 = flat, {:.2} = one \
             device gates all)",
            self.gating_flatness, self.shards as f64,
        ));
        report.line(&format!(
            "  stolen candidate items: {} served by idle devices for loaded peers",
            self.stolen_items,
        ));
        report.line(&format!(
            "  mean reduce barrier: {:.2} ms (incremental reduce folds partials on arrival)",
            self.mean_reduce_barrier.as_secs_f64() * 1e3,
        ));
        report.line("");
        report.line("The cost-aware partition sizes each device's candidate range by modeled");
        report.line("work, work stealing lets an idle device drain a loaded peer's queue, and");
        report.line("the incremental reduce folds each partial as it arrives instead of");
        report.line("barriering on the last device — together they flatten the gating-device");
        report.line("histogram and pull the reduce barrier toward zero on the very skew that");
        report.line("used to gate the 8-device array.");
        report.finish()
    }
}

/// Runs the traced streaming pass and returns what the trace observed.
pub fn step3_trace_measure() -> Step3TraceMeasurement {
    let (references, sample) = fixture_skewed();
    let analyzer = MegisAnalyzer::build(&references, MegisConfig::small());
    let engine = StreamingEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(TRACE_SHARDS)
            .with_device_latency(TRACE_DEVICE)
            .with_step3_item_latency(TRACE_STEP3_ITEM)
            .with_tracing(),
    );
    let handles: Vec<_> = (0..TRACE_JOBS)
        .map(|i| {
            engine
                .submit(JobSpec::new(format!("traced-{i}"), sample.clone()))
                .expect("admission")
        })
        .collect();
    let mut closures = Vec::new();
    for handle in handles {
        let result = handle.wait().expect("job served");
        let breakdown = result
            .breakdown
            .expect("tracing is on, so every job carries a breakdown");
        closures.push((result.id.0, breakdown.total(), result.latency));
    }
    let report = engine.shutdown();
    let straggler = report
        .straggler
        .expect("tracing is on, so the report carries the straggler analysis");
    let trace = report
        .trace
        .expect("tracing is on, so the report carries the event log");
    let mean = report
        .stage_breakdown
        .expect("tracing is on, so the report carries the mean breakdown");
    let stolen_items: u64 = report.shard_stats.iter().map(|s| s.stolen_items).sum();
    let gating_flatness = straggler.gating_histogram_flatness();
    let step3_busy_skew = straggler.step3_busy_skew();
    // Annotate the raw event log with the pass's headline figures so the
    // committed `BENCH_step3_trace.json` is self-describing.
    let trace_json = trace.to_json().replacen(
        "\"trace\": \"megis-sched\",",
        &format!(
            "\"trace\": \"megis-sched\",\n  \"bench\": \"step3_trace\",\n  \
             \"gating_histogram_flatness\": {:.4},\n  \
             \"step3_busy_skew\": {:.4},\n  \
             \"mean_reduce_barrier_us\": {:.1},\n  \
             \"stolen_items\": {},",
            gating_flatness,
            step3_busy_skew,
            mean.reduce_barrier.as_secs_f64() * 1e6,
            stolen_items,
        ),
        1,
    );
    Step3TraceMeasurement {
        jobs: TRACE_JOBS,
        shards: TRACE_SHARDS,
        closures,
        mean_breakdown_line: mean.summary_line(),
        mean_reduce_barrier: mean.reduce_barrier,
        straggler_text: straggler.report(),
        step3_busy_skew,
        gating_flatness,
        stolen_items,
        trace_json,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn step3_scaling_confirms_parity() {
        let m = super::step3_scaling_measure();
        assert!(
            m.parity,
            "partitioned step 3 must reproduce the sequential oracle"
        );
        assert_eq!(
            m.candidates,
            super::CANDIDATES,
            "the tiling sample must push every skewed species past presence"
        );
        assert!(
            m.cost_skew > 2.0,
            "the fixture must be adversarially skewed, got {:.2}x",
            m.cost_skew
        );
        assert!(m.mapped_reads > 0);
        let report = m.report();
        assert!(report.contains("parity with sequential step 3: identical"));
        assert!(report.contains("step3 monotone scaling:"));
        let json = m.to_json();
        assert!(json.contains("\"bench\": \"step3_scaling\""));
        assert!(json.contains("\"workload\": \"skewed\""));
        assert!(json.contains("\"parity\": true"));
        // The wall-clock scaling verdict is asserted in release only: the
        // sweep is device-bound by construction (simulated index streams
        // overlap even on one core), but a debug-profile functional merge
        // can swamp the stream times. The release-mode CI smoke step runs
        // the bin and greps the verdict, so the property stays enforced
        // where a failure is attributable.
        #[cfg(not(debug_assertions))]
        assert!(
            m.scaling_confirmed(),
            "step 3 speedup must increase monotonically through 8 devices:\n{report}"
        );
    }

    #[test]
    fn traced_pass_closes_breakdowns_and_names_gating_devices() {
        let m = super::step3_trace_measure();
        assert_eq!(m.closures.len(), super::TRACE_JOBS);
        // Closure is a consistency property between two independent
        // measurements of the same wall clock, not a speed property, so it
        // holds in debug builds too (slower jobs only shrink the relative
        // error).
        assert!(
            m.closure_confirmed(),
            "stage breakdowns must telescope to the measured latency:\n{}",
            m.report()
        );
        assert!(m.step3_busy_skew >= 1.0);
        assert!(m.gating_flatness >= 1.0);
        let report = m.report();
        assert!(report
            .contains("straggler report: per-device busy/stall/idle and per-job step-3 gating"));
        // Every device line, every job's gating entry, the histogram, and
        // the new flatness/stealing/reduce-barrier figures must be present
        // for the widest array.
        for device in 0..super::TRACE_SHARDS {
            assert!(report.contains(&format!("device {device}:")), "{report}");
        }
        assert!(
            report.contains("reduce gated by: [job seq 0 -> device"),
            "{report}"
        );
        assert!(report.contains("gating-device histogram:"), "{report}");
        assert!(report.contains("gating-histogram flatness"), "{report}");
        assert!(report.contains("stolen candidate items:"), "{report}");
        assert!(report.contains("mean reduce barrier:"), "{report}");
        assert!(m.trace_json.contains("\"trace\""));
        assert!(m.trace_json.contains("\"gating_histogram_flatness\""));
        assert!(m.trace_json.contains("\"mean_reduce_barrier_us\""));
        // With cost-aware parts and stealing, no single device should gate
        // every reduce on this skew. Release-only for the same reason as
        // the sweep verdict.
        #[cfg(not(debug_assertions))]
        assert!(
            m.gating_flatness < super::TRACE_SHARDS as f64,
            "one device still gates every reduce:\n{}",
            m.report()
        );
    }
}
