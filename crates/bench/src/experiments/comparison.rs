//! System-level comparisons: cost efficiency (Fig. 18), the PIM-accelerated
//! baseline (Fig. 19), abundance estimation (Fig. 20), and the multi-sample
//! use case (Fig. 21).

use megis::pipeline::{baseline_multi_sample, software_multi_sample, MegisTimingModel};
use megis_genomics::sample::Diversity;
use megis_host::accelerators::{PimKmerMatcher, SortingAccelerator};
use megis_host::cost::system_price_usd;
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::kraken::KrakenTimingModel;
use megis_tools::metalign::MetalignTimingModel;
use megis_tools::pim::PimAcceleratedKraken;
use megis_tools::timing::geometric_mean;
use megis_tools::workload::WorkloadSpec;

use crate::report::Report;

/// Fig. 18: MegIS on the cost-optimized system (SSD-C + 64 GB DRAM) versus the
/// baselines on cost- and performance-optimized systems; speedups over
/// P-Opt on the performance-optimized system.
pub fn fig18_cost_efficiency() -> String {
    let mut report = Report::new();
    report.title("Figure 18: system cost efficiency");
    let cost_system = SystemConfig::cost_optimized();
    let perf_system = SystemConfig::performance_optimized();
    report.line(&format!(
        "cost-optimized system (SSD-C + 64 GB DRAM): ~{:.0} USD of DRAM+SSD",
        system_price_usd(&cost_system)
    ));
    report.line(&format!(
        "performance-optimized system (SSD-P + 1 TB DRAM): ~{:.0} USD of DRAM+SSD",
        system_price_usd(&perf_system)
    ));

    report.table_header(&["config", "CAMI-L", "CAMI-M", "CAMI-H", "GMean"]);
    let workloads = WorkloadSpec::all_cami();
    let reference: Vec<f64> = workloads
        .iter()
        .map(|w| {
            KrakenTimingModel
                .presence_breakdown(&perf_system, w)
                .total()
                .as_secs()
        })
        .collect();

    let add_row = |name: &str, totals: Vec<f64>| {
        let mut speedups: Vec<f64> = totals.iter().zip(&reference).map(|(t, r)| r / t).collect();
        speedups.push(geometric_mean(&speedups));
        // A local borrow of report is fine: add_row is called sequentially.
        (name.to_string(), speedups)
    };
    let rows = vec![
        add_row(
            "P-Opt_P",
            workloads
                .iter()
                .map(|w| {
                    KrakenTimingModel
                        .presence_breakdown(&perf_system, w)
                        .total()
                        .as_secs()
                })
                .collect(),
        ),
        add_row(
            "A-Opt_P",
            workloads
                .iter()
                .map(|w| {
                    MetalignTimingModel::a_opt()
                        .presence_breakdown(&perf_system, w)
                        .total()
                        .as_secs()
                })
                .collect(),
        ),
        add_row(
            "P-Opt_C",
            workloads
                .iter()
                .map(|w| {
                    KrakenTimingModel
                        .presence_breakdown(&cost_system, w)
                        .total()
                        .as_secs()
                })
                .collect(),
        ),
        add_row(
            "A-Opt_C",
            workloads
                .iter()
                .map(|w| {
                    MetalignTimingModel::a_opt()
                        .presence_breakdown(&cost_system, w)
                        .total()
                        .as_secs()
                })
                .collect(),
        ),
        add_row(
            "MS_C",
            workloads
                .iter()
                .map(|w| {
                    MegisTimingModel::full()
                        .presence_breakdown(&cost_system, w)
                        .total()
                        .as_secs()
                })
                .collect(),
        ),
    ];
    for (name, speedups) in rows {
        report.table_row(&name, &speedups);
    }
    report.line("");
    report.line("Paper: MS on the cost-optimized system is 2.4x / 7.2x faster on average than");
    report.line("P-Opt / A-Opt on the performance-optimized system.");
    report.finish()
}

/// Fig. 19: speedup of MegIS over the Sieve-accelerated Kraken2 baseline.
pub fn fig19_pim_comparison() -> String {
    let mut report = Report::new();
    report.title("Figure 19: speedup over the PIM-accelerated (Sieve) baseline");
    for base in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
        let system =
            SystemConfig::reference(base.clone()).with_pim_matcher(PimKmerMatcher::default());
        report.section(&base.name.clone());
        report.table_header(&["config", "CAMI-L", "CAMI-M", "CAMI-H"]);
        let workloads = WorkloadSpec::all_cami();
        let pim_totals: Vec<f64> = workloads
            .iter()
            .map(|w| {
                PimAcceleratedKraken
                    .presence_breakdown(&system, w)
                    .total()
                    .as_secs()
            })
            .collect();
        report.table_row("Base (PIM)", &[1.0, 1.0, 1.0]);
        let ms: Vec<f64> = workloads
            .iter()
            .zip(&pim_totals)
            .map(|(w, pim)| {
                pim / MegisTimingModel::full()
                    .presence_breakdown(&system, w)
                    .total()
                    .as_secs()
            })
            .collect();
        report.table_row("MS", &ms);
    }
    report.line("");
    report.line("Paper: 4.8-5.1x on SSD-C and 1.5-2.7x on SSD-P, with significantly higher");
    report.line("accuracy than the PIM-accelerated baseline.");
    report.finish()
}

/// Fig. 20: abundance-estimation speedups over P-Opt.
pub fn fig20_abundance() -> String {
    let mut report = Report::new();
    report.title("Figure 20: abundance estimation speedup over P-Opt");
    for system in crate::experiments::reference_systems() {
        report.section(&system.primary_ssd().name.clone());
        report.table_header(&["config", "CAMI-L", "CAMI-M", "CAMI-H", "GMean"]);
        let workloads = WorkloadSpec::all_cami();
        let p_totals: Vec<f64> = workloads
            .iter()
            .map(|w| {
                KrakenTimingModel
                    .abundance_breakdown(&system, w)
                    .total()
                    .as_secs()
            })
            .collect();
        type TimeFn = Box<dyn Fn(&WorkloadSpec) -> f64>;
        let configs: Vec<(&str, TimeFn)> = vec![
            (
                "P-Opt",
                Box::new({
                    let system = system.clone();
                    move |w: &WorkloadSpec| {
                        KrakenTimingModel
                            .abundance_breakdown(&system, w)
                            .total()
                            .as_secs()
                    }
                }),
            ),
            (
                "A-Opt",
                Box::new({
                    let system = system.clone();
                    move |w: &WorkloadSpec| {
                        MetalignTimingModel::a_opt()
                            .abundance_breakdown(&system, w)
                            .total()
                            .as_secs()
                    }
                }),
            ),
            (
                "MS-NIdx",
                Box::new({
                    let system = system.clone();
                    move |w: &WorkloadSpec| {
                        MegisTimingModel::without_in_storage_index()
                            .abundance_breakdown(&system, w)
                            .total()
                            .as_secs()
                    }
                }),
            ),
            (
                "MS",
                Box::new({
                    let system = system.clone();
                    move |w: &WorkloadSpec| {
                        MegisTimingModel::full()
                            .abundance_breakdown(&system, w)
                            .total()
                            .as_secs()
                    }
                }),
            ),
        ];
        for (name, total_of) in configs {
            let mut speedups: Vec<f64> = workloads
                .iter()
                .zip(&p_totals)
                .map(|(w, p)| p / total_of(w))
                .collect();
            speedups.push(geometric_mean(&speedups));
            report.table_row(name, &speedups);
        }
    }
    report.line("");
    report.line("Paper: MS is 5.1-5.5x (SSD-C) and 2.5-3.7x (SSD-P) faster than P-Opt, and");
    report.line("65% faster on average than MS-NIdx thanks to in-SSD index generation.");
    report.finish()
}

/// Fig. 21: multi-sample analysis speedups over P-Opt and A-Opt with 256 GB
/// of host DRAM and a sorting accelerator.
pub fn fig21_multi_sample() -> String {
    let mut report = Report::new();
    report.title("Figure 21: multi-sample analysis (256 GB DRAM, sorting accelerator)");
    let workload = WorkloadSpec::cami(Diversity::Medium);
    for base in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
        let system = SystemConfig::reference(base.clone())
            .with_dram_capacity(ByteSize::from_gb(256.0))
            .with_sorting_accelerator(SortingAccelerator::default());
        report.section(&base.name.clone());
        report.table_header(&["samples", "vs P-Opt", "vs A-Opt", "MS-SW vs A-Opt"]);
        let p_single = KrakenTimingModel.presence_breakdown(&system, &workload);
        let a_single = MetalignTimingModel::a_opt().presence_breakdown(&system, &workload);
        for samples in [1usize, 4, 8, 16] {
            let ms = MegisTimingModel::full().multi_sample_breakdown(&system, &workload, samples);
            let sw = software_multi_sample(&system, &workload, samples);
            let p_n = baseline_multi_sample(&p_single, samples);
            let a_n = baseline_multi_sample(&a_single, samples);
            report.table_row(
                &samples.to_string(),
                &[
                    p_n.total() / ms.total(),
                    a_n.total() / ms.total(),
                    a_n.total() / sw.total(),
                ],
            );
        }
    }
    report.line("");
    report.line("Paper: up to 37.2x over P-Opt and 100.2x over A-Opt for 16 samples; the");
    report.line("software-only pipelined variant reaches up to 20.5x/52.0x over A-Opt.");
    report.finish()
}
