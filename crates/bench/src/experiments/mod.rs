//! One function per figure/table of the paper's evaluation.
//!
//! Every function evaluates the workspace's models at paper scale and returns
//! a plain-text report with the same rows/series as the corresponding figure
//! or table. The binaries under `src/bin/` are thin wrappers over these
//! functions; [`all`] concatenates the complete suite (what
//! `cargo run -p megis-bench --bin all_experiments` prints and what
//! EXPERIMENTS.md records).

mod accuracy;
mod coalescing_sweep;
mod comparison;
mod energy;
mod engine;
mod fault_recovery;
mod hardware;
mod hotpath;
mod motivation;
mod presence;
mod queue;
mod scaling;
mod step3_scaling;
mod trace_overhead;

pub use accuracy::accuracy_analysis;
pub use coalescing_sweep::{
    coalescing_sweep, coalescing_sweep_measure, CoalescingMeasurement, CoalescingRow,
};
pub use comparison::{
    fig18_cost_efficiency, fig19_pim_comparison, fig20_abundance, fig21_multi_sample,
};
pub use energy::energy_analysis;
pub use engine::{fig15_sharded_engine, fig21_batch_engine, streaming_load_analysis};
pub use fault_recovery::{fault_recovery, fault_recovery_measure, FaultRecoveryMeasurement};
pub use hardware::{kss_size_analysis, table1_ssd_configs, table2_area_power};
pub use hotpath::{hotpath, hotpath_measure, HotpathMeasurement};
pub use motivation::fig03_io_overhead;
pub use presence::{fig12_presence_speedup, fig13_time_breakdown, fig14_database_size};
pub use queue::{
    queue_depth_sweep, queue_depth_sweep_measure, QueueDepthMeasurement, QueueDepthRow,
};
pub use scaling::{fig15_multi_ssd, fig16_dram_capacity, fig17_internal_bandwidth};
pub use step3_scaling::{
    step3_scaling, step3_scaling_measure, step3_trace_measure, Step3ScalingMeasurement,
    Step3TraceMeasurement, CLOSURE_GATE,
};
pub use trace_overhead::{
    trace_overhead, trace_overhead_measure, TraceOverheadMeasurement, OVERHEAD_GATE,
};

/// Runs every experiment and concatenates the reports in paper order.
pub fn all() -> String {
    [
        fig03_io_overhead(),
        table1_ssd_configs(),
        fig12_presence_speedup(),
        fig13_time_breakdown(),
        fig14_database_size(),
        fig15_multi_ssd(),
        fig15_sharded_engine(),
        fig16_dram_capacity(),
        fig17_internal_bandwidth(),
        fig18_cost_efficiency(),
        fig19_pim_comparison(),
        fig20_abundance(),
        fig21_multi_sample(),
        fig21_batch_engine(),
        streaming_load_analysis(),
        queue_depth_sweep(),
        step3_scaling(),
        trace_overhead(),
        fault_recovery(),
        coalescing_sweep(),
        hotpath(),
        table2_area_power(),
        kss_size_analysis(),
        energy_analysis(),
        accuracy_analysis(),
    ]
    .concat()
}

/// The two reference single-SSD systems of the evaluation (§5).
pub(crate) fn reference_systems() -> Vec<megis_host::system::SystemConfig> {
    vec![
        megis_host::system::SystemConfig::reference(megis_ssd::config::SsdConfig::ssd_c()),
        megis_host::system::SystemConfig::reference(megis_ssd::config::SsdConfig::ssd_p()),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_experiment_produces_output() {
        for (name, text) in [
            ("fig03", super::fig03_io_overhead()),
            ("table1", super::table1_ssd_configs()),
            ("fig12", super::fig12_presence_speedup()),
            ("fig13", super::fig13_time_breakdown()),
            ("fig14", super::fig14_database_size()),
            ("fig15", super::fig15_multi_ssd()),
            ("fig15-engine", super::fig15_sharded_engine()),
            ("fig16", super::fig16_dram_capacity()),
            ("fig17", super::fig17_internal_bandwidth()),
            ("fig18", super::fig18_cost_efficiency()),
            ("fig19", super::fig19_pim_comparison()),
            ("fig20", super::fig20_abundance()),
            ("fig21", super::fig21_multi_sample()),
            ("fig21-engine", super::fig21_batch_engine()),
            ("streaming-load", super::streaming_load_analysis()),
            // `hotpath`, `step3_scaling`, `trace_overhead`,
            // `fault_recovery`, and `coalescing_sweep` are deliberately
            // absent: the first's cache-oversized fixture makes a full
            // measurement expensive, the others sleep simulated device
            // streams, and all five have test modules that already run
            // (and assert on) one measurement — duplicating them here
            // would pay that cost twice per test run for a non-emptiness
            // check.
            ("table2", super::table2_area_power()),
            ("kss", super::kss_size_analysis()),
            ("energy", super::energy_analysis()),
        ] {
            assert!(text.len() > 200, "{name} report looks empty");
            assert!(
                text.contains("Figure") || text.contains("Table") || text.contains("analysis"),
                "{name} report misses expected content"
            );
        }
    }
}
