//! Plain-text report formatting shared by all experiment binaries.

use std::fmt::Write as _;

/// A simple fixed-width text report builder.
#[derive(Debug, Clone, Default)]
pub struct Report {
    text: String,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a top-level experiment title.
    pub fn title(&mut self, title: &str) -> &mut Self {
        let _ = writeln!(self.text, "\n{}", "=".repeat(78));
        let _ = writeln!(self.text, "{title}");
        let _ = writeln!(self.text, "{}", "=".repeat(78));
        self
    }

    /// Adds a section heading.
    pub fn section(&mut self, heading: &str) -> &mut Self {
        let _ = writeln!(self.text, "\n-- {heading}");
        self
    }

    /// Adds a free-form line.
    pub fn line(&mut self, line: &str) -> &mut Self {
        let _ = writeln!(self.text, "{line}");
        self
    }

    /// Adds a table header row followed by a rule.
    pub fn table_header(&mut self, columns: &[&str]) -> &mut Self {
        let row = columns
            .iter()
            .map(|c| format!("{c:>14}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(self.text, "{row}");
        let _ = writeln!(self.text, "{}", "-".repeat(row.len().min(100)));
        self
    }

    /// Adds a table row with a string label followed by numeric cells.
    pub fn table_row(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut row = format!("{label:>14}");
        for v in values {
            let cell = if *v >= 1000.0 {
                format!("{v:.0}")
            } else if *v >= 10.0 {
                format!("{v:.1}")
            } else {
                format!("{v:.2}")
            };
            row.push_str(&format!(" {cell:>14}"));
        }
        let _ = writeln!(self.text, "{row}");
        self
    }

    /// Adds a table row of string cells.
    pub fn table_row_text(&mut self, cells: &[&str]) -> &mut Self {
        let row = cells
            .iter()
            .map(|c| format!("{c:>14}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(self.text, "{row}");
        self
    }

    /// The rendered report.
    pub fn finish(&self) -> String {
        self.text.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_titles_tables_and_rows() {
        let mut r = Report::new();
        r.title("Figure X");
        r.section("SSD-C");
        r.table_header(&["config", "speedup"]);
        r.table_row("MS", &[5.3]);
        r.table_row_text(&["P-Opt", "1.00"]);
        let text = r.finish();
        assert!(text.contains("Figure X"));
        assert!(text.contains("-- SSD-C"));
        assert!(text.contains("speedup"));
        assert!(text.contains("5.30"));
        assert!(text.contains("P-Opt"));
    }

    #[test]
    fn large_values_render_without_decimals() {
        let mut r = Report::new();
        r.table_row("load", &[1251.7, 12.34, 3.456]);
        let text = r.finish();
        assert!(text.contains("1252"));
        assert!(text.contains("12.3"));
        assert!(text.contains("3.46"));
    }
}
