//! Runs the queue-depth sweep (per-shard NVMe-style command queues, depth
//! 1 → 8 on a device-bound batch) and writes the measurement to
//! `BENCH_queue_depth.json` (override with `--out <path>`); see
//! `megis_bench::experiments::queue_depth_sweep` for details.

fn main() {
    let measurement = megis_bench::experiments::queue_depth_sweep_measure();
    print!("{}", measurement.report());
    let path = megis_bench::out_path("BENCH_queue_depth.json");
    std::fs::write(&path, measurement.to_json())
        .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    eprintln!("wrote {path}");
}
