//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::queue_depth_sweep` for details.

fn main() {
    print!("{}", megis_bench::experiments::queue_depth_sweep());
}
