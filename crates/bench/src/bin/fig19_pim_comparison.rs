//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig19_pim_comparison` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig19_pim_comparison());
}
