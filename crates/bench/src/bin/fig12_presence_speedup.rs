//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig12_presence_speedup` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig12_presence_speedup());
}
