//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig16_dram_capacity` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig16_dram_capacity());
}
