//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig17_internal_bandwidth` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig17_internal_bandwidth());
}
