//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::streaming_load_analysis` for details.

fn main() {
    print!("{}", megis_bench::experiments::streaming_load_analysis());
}
