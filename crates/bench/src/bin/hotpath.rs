//! Runs the hot-path microbenchmarks (galloping intersection vs the
//! two-pointer reference, sort-based counting/build vs their `BTreeMap`
//! baselines, zero-copy shard residency) and writes the measurement to
//! `BENCH_hotpath.json` (override with `--out <path>`) — the repo's
//! performance trajectory record; see `megis_bench::experiments::hotpath`
//! for details.

fn main() {
    let measurement = megis_bench::experiments::hotpath_measure();
    print!("{}", measurement.report());
    let path = megis_bench::out_path("BENCH_hotpath.json");
    std::fs::write(&path, measurement.to_json())
        .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    eprintln!("wrote {path}");
}
