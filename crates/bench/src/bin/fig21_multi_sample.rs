//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig21_multi_sample` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig21_multi_sample());
}
