//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::kss_size_analysis` for details.

fn main() {
    print!("{}", megis_bench::experiments::kss_size_analysis());
}
