//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig18_cost_efficiency` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig18_cost_efficiency());
}
