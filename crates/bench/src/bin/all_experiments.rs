//! Regenerates every figure and table of the MegIS evaluation in paper order.

fn main() {
    print!("{}", megis_bench::experiments::all());
}
