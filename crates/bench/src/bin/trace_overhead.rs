//! Trace overhead gate: pipeline tracing vs the no-trace baseline.
//!
//! Prints the report with the greppable `trace overhead: confirmed` verdict
//! and writes the JSON record (default `BENCH_trace_overhead.json`;
//! override with `--out <path>`).

use megis_bench::experiments::trace_overhead_measure;
use megis_bench::out_path;

fn main() {
    let measurement = trace_overhead_measure();
    print!("{}", measurement.report());
    let path = out_path("BENCH_trace_overhead.json");
    std::fs::write(&path, measurement.to_json()).expect("write bench record");
    println!("wrote {path}");
}
