//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig14_database_size` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig14_database_size());
}
