//! Runs the partitioned Step 3 scaling sweep (unified-index generation and
//! read mapping sharded across 1 → 8 devices, device-bound) plus the traced
//! streaming pass (stage breakdowns and the straggler analysis at 8
//! devices), and writes the sweep measurement to `BENCH_step3.json`
//! (`--out <path>`) and the raw trace event log to `BENCH_step3_trace.json`
//! (`--trace-out <path>`); see `megis_bench::experiments::step3_scaling`
//! for details.

use megis_bench::{flag_value, out_path};

fn main() {
    let measurement = megis_bench::experiments::step3_scaling_measure();
    print!("{}", measurement.report());
    let path = out_path("BENCH_step3.json");
    std::fs::write(&path, measurement.to_json())
        .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    eprintln!("wrote {path}");

    let traced = megis_bench::experiments::step3_trace_measure();
    print!("{}", traced.report());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path =
        flag_value(&args, "--trace-out").unwrap_or_else(|| "BENCH_step3_trace.json".to_string());
    std::fs::write(&trace_path, &traced.trace_json)
        .unwrap_or_else(|e| panic!("failed to write {trace_path}: {e}"));
    eprintln!("wrote {trace_path}");
}
