//! Runs the partitioned Step 3 scaling sweep (unified-index generation and
//! read mapping sharded across 1 → 8 devices, device-bound) and writes the
//! measurement to `BENCH_step3.json` in the current directory; see
//! `megis_bench::experiments::step3_scaling` for details.

fn main() {
    let measurement = megis_bench::experiments::step3_scaling_measure();
    print!("{}", measurement.report());
    let path = "BENCH_step3.json";
    std::fs::write(path, measurement.to_json())
        .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    eprintln!("wrote {path}");
}
