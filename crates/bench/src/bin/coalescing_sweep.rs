//! Query coalescing smoke: shared sweeps vs per-sample dispatch.
//!
//! Prints the report with the greppable `query coalescing: confirmed`
//! verdict and writes the JSON record (default `BENCH_coalescing.json`;
//! override with `--out <path>`).

use megis_bench::experiments::coalescing_sweep_measure;
use megis_bench::out_path;

fn main() {
    let measurement = coalescing_sweep_measure();
    print!("{}", measurement.report());
    let path = out_path("BENCH_coalescing.json");
    std::fs::write(&path, measurement.to_json()).expect("write bench record");
    println!("wrote {path}");
}
