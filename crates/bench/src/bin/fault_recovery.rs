//! Fault recovery smoke: seeded transient storm vs the clean run.
//!
//! Prints the report with the greppable `fault recovery: confirmed` verdict
//! and writes the JSON record (default `BENCH_chaos.json`; override with
//! `--out <path>`).

use megis_bench::experiments::fault_recovery_measure;
use megis_bench::out_path;

fn main() {
    let measurement = fault_recovery_measure();
    print!("{}", measurement.report());
    let path = out_path("BENCH_chaos.json");
    std::fs::write(&path, measurement.to_json()).expect("write bench record");
    println!("wrote {path}");
}
