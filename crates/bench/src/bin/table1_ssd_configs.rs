//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::table1_ssd_configs` for details.

fn main() {
    print!("{}", megis_bench::experiments::table1_ssd_configs());
}
