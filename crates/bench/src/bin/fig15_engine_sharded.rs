//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig15_sharded_engine` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig15_sharded_engine());
}
