//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig15_multi_ssd` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig15_multi_ssd());
}
