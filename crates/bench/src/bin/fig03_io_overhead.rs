//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig03_io_overhead` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig03_io_overhead());
}
