//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig13_time_breakdown` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig13_time_breakdown());
}
