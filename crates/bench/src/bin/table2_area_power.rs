//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::table2_area_power` for details.

fn main() {
    print!("{}", megis_bench::experiments::table2_area_power());
}
