//! Regenerates one experiment of the MegIS evaluation; see
//! `megis_bench::experiments::fig20_abundance` for details.

fn main() {
    print!("{}", megis_bench::experiments::fig20_abundance());
}
