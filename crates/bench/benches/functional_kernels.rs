//! Criterion micro-benchmarks of the functional kernels MegIS and its
//! baselines are built from: k-mer extraction, KMC-style counting/sorting,
//! sorted-stream intersection, taxID retrieval (KSS vs ternary tree vs flat
//! sketch tables), hash-table classification, and unified-index merging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use megis::kss::KssTables;
use megis_genomics::database::{ReferenceIndex, SortedKmerDatabase, UnifiedReferenceIndex};
use megis_genomics::kmer::Kmer;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_genomics::sketch::{SketchConfig, SketchDatabase};
use megis_tools::kmc::{ExclusionPolicy, KmerCounts};
use megis_tools::kraken::KrakenClassifier;
use megis_tools::ternary::TernarySketchTree;

fn fixture() -> (
    megis_genomics::sample::Community,
    SortedKmerDatabase,
    SketchDatabase,
    KssTables,
    TernarySketchTree,
) {
    let community = CommunityConfig::preset(Diversity::Medium)
        .with_reads(300)
        .with_database_species(16)
        .with_genome_len(2000)
        .build(2024);
    let database = SortedKmerDatabase::build(community.references(), 31);
    let sketches = SketchDatabase::build(community.references(), SketchConfig::small());
    let kss = KssTables::build(&sketches);
    let tree = TernarySketchTree::build(&sketches);
    (community, database, sketches, kss, tree)
}

fn bench_kmer_extraction(c: &mut Criterion) {
    let (community, ..) = fixture();
    let reads = community.sample().reads();
    let total_bases = reads.total_bases() as u64;
    let mut group = c.benchmark_group("kmer_extraction");
    group.throughput(Throughput::Elements(total_bases));
    for k in [21usize, 31] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut count = 0usize;
                for read in reads.iter() {
                    count += read.kmers(k).count();
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_kmc_counting(c: &mut Criterion) {
    let (community, ..) = fixture();
    let reads = community.sample().reads();
    c.bench_function("kmc_count_and_exclude", |b| {
        b.iter(|| {
            let counts = KmerCounts::count(reads, 31);
            counts.apply_exclusion(ExclusionPolicy::default()).len()
        })
    });
}

fn bench_intersection(c: &mut Criterion) {
    let (community, database, ..) = fixture();
    let counts = KmerCounts::count(community.sample().reads(), database.k());
    let queries = counts.apply_exclusion(ExclusionPolicy::default());
    let mut group = c.benchmark_group("sorted_stream_intersection");
    group.throughput(Throughput::Elements((queries.len() + database.len()) as u64));
    group.bench_function("galloping", |b| {
        b.iter(|| database.intersect_sorted(&queries).len())
    });
    group.bench_function("two_pointer", |b| {
        b.iter(|| database.intersect_sorted_two_pointer(&queries).len())
    });
    // The skewed regime galloping targets: one query per 64 database
    // entries.
    let sparse: Vec<Kmer> = database.kmers().step_by(64).collect();
    group.bench_function("galloping_skewed", |b| {
        b.iter(|| database.intersect_sorted(&sparse).len())
    });
    group.bench_function("two_pointer_skewed", |b| {
        b.iter(|| database.intersect_sorted_two_pointer(&sparse).len())
    });
    group.finish();
}

fn bench_taxid_retrieval(c: &mut Criterion) {
    let (community, database, sketches, kss, tree) = fixture();
    let counts = KmerCounts::count(community.sample().reads(), database.k());
    let queries = counts.apply_exclusion(ExclusionPolicy::default());
    let intersecting = database.intersect_sorted(&queries);
    let mut group = c.benchmark_group("taxid_retrieval");
    group.throughput(Throughput::Elements(intersecting.len() as u64));
    group.bench_function("kss_stream", |b| {
        b.iter(|| kss.stream_retrieve(&intersecting).len())
    });
    group.bench_function("ternary_tree", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &intersecting {
                hits += tree.lookup_with_prefixes(*q).len();
            }
            hits
        })
    });
    group.bench_function("flat_tables", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &intersecting {
                hits += sketches.lookup_with_prefixes(*q).len();
            }
            hits
        })
    });
    group.finish();
}

fn bench_hash_classification(c: &mut Criterion) {
    let (community, ..) = fixture();
    let classifier = KrakenClassifier::build(community.references(), 21);
    let reads = community.sample().reads();
    let mut group = c.benchmark_group("hash_classification");
    group.throughput(Throughput::Elements(reads.len() as u64));
    group.bench_function("classify_sample", |b| {
        b.iter(|| classifier.classify(reads).presence.len())
    });
    group.finish();
}

fn bench_unified_index_merge(c: &mut Criterion) {
    let refs = ReferenceCollection::synthetic(12, 2000, 9);
    let indexes: Vec<ReferenceIndex> = refs
        .genomes()
        .iter()
        .map(|g| ReferenceIndex::build(g, 15))
        .collect();
    c.bench_function("unified_index_merge", |b| {
        b.iter(|| UnifiedReferenceIndex::merge(&indexes).len())
    });
}

fn bench_kmer_primitives(c: &mut Criterion) {
    let kmer = Kmer::from_ascii(b"ACGTACGTTGCAACGTACGGTACGTACGTAC").unwrap();
    c.bench_function("kmer_canonicalize", |b| b.iter(|| kmer.canonical()));
    c.bench_function("kmer_prefix", |b| b.iter(|| kmer.prefix(21)));
}

criterion_group!(
    benches,
    bench_kmer_extraction,
    bench_kmc_counting,
    bench_intersection,
    bench_taxid_retrieval,
    bench_hash_classification,
    bench_unified_index_merge,
    bench_kmer_primitives
);
criterion_main!(benches);
