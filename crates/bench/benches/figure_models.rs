//! Criterion benchmarks over the paper-scale figure models: evaluating each
//! figure's full model must stay cheap enough to sweep interactively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use megis::pipeline::MegisTimingModel;
use megis::MegisVariant;
use megis_genomics::sample::Diversity;
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_tools::kraken::KrakenTimingModel;
use megis_tools::metalign::MetalignTimingModel;
use megis_tools::workload::WorkloadSpec;

fn bench_presence_models(c: &mut Criterion) {
    let system = SystemConfig::reference(SsdConfig::ssd_p());
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let mut group = c.benchmark_group("presence_models");
    group.bench_function("p_opt", |b| {
        b.iter(|| KrakenTimingModel.presence_breakdown(&system, &workload).total())
    });
    group.bench_function("a_opt", |b| {
        b.iter(|| {
            MetalignTimingModel::a_opt()
                .presence_breakdown(&system, &workload)
                .total()
        })
    });
    for variant in MegisVariant::ALL {
        group.bench_with_input(
            BenchmarkId::new("megis", variant.label()),
            &variant,
            |b, v| {
                b.iter(|| {
                    MegisTimingModel::new(*v)
                        .presence_breakdown(&system, &workload)
                        .total()
                })
            },
        );
    }
    group.finish();
}

fn bench_figure_suites(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_suites");
    group.sample_size(10);
    group.bench_function("fig12", |b| {
        b.iter(megis_bench::experiments::fig12_presence_speedup)
    });
    group.bench_function("fig16", |b| {
        b.iter(megis_bench::experiments::fig16_dram_capacity)
    });
    group.bench_function("fig21", |b| {
        b.iter(megis_bench::experiments::fig21_multi_sample)
    });
    group.bench_function("energy", |b| b.iter(megis_bench::experiments::energy_analysis));
    group.finish();
}

criterion_group!(benches, bench_presence_models, bench_figure_suites);
criterion_main!(benches);
