//! CLI for the workspace concurrency-invariant linter.
//!
//! ```text
//! megis-lint [--root <dir>] [--out <report.json>]
//! ```
//!
//! Prints the diagnostic listing and the grepable verdict line, optionally
//! writes the JSON report, and exits 1 on any unsuppressed diagnostic (2 on
//! usage/IO errors).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--out" => match argv.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => return usage("--out requires a file path"),
            },
            "--help" | "-h" => {
                println!("usage: megis-lint [--root <dir>] [--out <report.json>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unrecognized argument `{other}`")),
        }
    }

    let report = match megis_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("megis-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = out {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("megis-lint: failed to write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("megis-lint: {problem}");
    eprintln!("usage: megis-lint [--root <dir>] [--out <report.json>]");
    ExitCode::from(2)
}
