//! Report assembly: the human-readable diagnostic listing, the one-line
//! verdict CI greps for, and the machine-readable JSON artifact.
//!
//! The JSON writer is hand-rolled (the whole crate is dependency-free so it
//! builds offline); the schema is small and flat on purpose:
//!
//! ```json
//! {
//!   "files_scanned": 42,
//!   "clean": true,
//!   "diagnostics": [ { "file", "line", "rule", "message", "hint" } ],
//!   "suppressed":  [ { "file", "line", "rule", "reason" } ]
//! }
//! ```

use crate::rules::{Diagnostic, SuppressedDiagnostic};
use std::fmt::Write as _;

/// Aggregated outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unsuppressed violations across all files.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations covered by `lint:allow` annotations (deliberate
    /// exceptions, kept visible).
    pub suppressed: Vec<SuppressedDiagnostic>,
}

impl LintReport {
    /// Whether the scanned tree has no unsuppressed violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The one-line verdict. CI greps the output for `megis lint: clean`;
    /// the dirty form deliberately does not contain that substring.
    pub fn verdict_line(&self) -> String {
        if self.is_clean() {
            format!(
                "megis lint: clean ({} files scanned, {} suppression(s))",
                self.files_scanned,
                self.suppressed.len()
            )
        } else {
            let files: std::collections::BTreeSet<&str> =
                self.diagnostics.iter().map(|d| d.file.as_str()).collect();
            format!(
                "megis lint: {} violation(s) across {} file(s)",
                self.diagnostics.len(),
                files.len()
            )
        }
    }

    /// The full human-readable listing: diagnostics with hints, suppressions,
    /// then the verdict line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
            let _ = writeln!(out, "    hint: {}", d.hint);
        }
        if !self.suppressed.is_empty() {
            let _ = writeln!(out, "suppressions in effect:");
            for s in &self.suppressed {
                let _ = writeln!(
                    out,
                    "    {}:{}: [{}] allowed: {}",
                    s.file, s.line, s.rule, s.reason
                );
            }
        }
        let _ = writeln!(out, "{}", self.verdict_line());
        out
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{ \"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {} }}",
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(&d.message),
                json_str(&d.hint)
            );
        }
        out.push_str(if self.diagnostics.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{ \"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {} }}",
                json_str(&s.file),
                s.line,
                json_str(s.rule),
                json_str(&s.reason)
            );
        }
        out.push_str(if self.suppressed.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually contain
/// (quotes, backslashes in Windows-style paths, control characters from
/// source snippets).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::POISON_SAFETY;

    fn dirty_report() -> LintReport {
        LintReport {
            files_scanned: 3,
            diagnostics: vec![Diagnostic {
                file: "crates/sched/src/service.rs".to_string(),
                line: 1017,
                rule: POISON_SAFETY,
                message: "say \"why\"".to_string(),
                hint: "use into_inner".to_string(),
            }],
            suppressed: Vec::new(),
        }
    }

    #[test]
    fn clean_verdict_is_grepable_and_dirty_is_not() {
        let clean = LintReport {
            files_scanned: 7,
            ..LintReport::default()
        };
        assert!(clean.verdict_line().contains("megis lint: clean"));
        let dirty = dirty_report();
        assert!(!dirty.verdict_line().contains("megis lint: clean"));
        assert!(!dirty.render_text().contains("megis lint: clean"));
        assert!(dirty.verdict_line().contains("1 violation(s)"));
    }

    #[test]
    fn text_listing_carries_location_rule_and_hint() {
        let text = dirty_report().render_text();
        assert!(text.contains("crates/sched/src/service.rs:1017: [poison-safety]"));
        assert!(text.contains("hint: use into_inner"));
    }

    #[test]
    fn json_escapes_quotes_and_reports_cleanliness() {
        let json = dirty_report().to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("say \\\"why\\\""));
        assert!(json.contains("\"line\": 1017"));
        let clean = LintReport {
            files_scanned: 2,
            ..LintReport::default()
        };
        let json = clean.to_json();
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"diagnostics\": []"));
    }
}
