//! The rule engine: repo-specific concurrency invariants over the token
//! stream.
//!
//! Each rule matches a *lexical* pattern the scheduler's incident history
//! has shown to be load-bearing (see the crate docs for the incidents).
//! Rules are deliberately syntactic and local — no type information, no
//! macro expansion — and each diagnostic names the violated invariant and a
//! fix. Deliberate exceptions are annotated in-source:
//!
//! ```text
//! // lint:allow(rule-name, why this occurrence is correct)
//! ```
//!
//! on the offending line or the comment block directly above it. The reason
//! text is mandatory: an allow without one (or naming an unknown rule) is
//! itself a diagnostic (`allow-hygiene`), and `allow-hygiene` diagnostics
//! cannot be suppressed.

use crate::scan::{scan, Comment, ScannedFile, Token, TokenKind};

/// The poison-safety rule: `.lock().unwrap()` / `.lock().expect(..)`.
pub const POISON_SAFETY: &str = "poison-safety";
/// The guard-across-blocking rule: a `MutexGuard` live across
/// `send`/`recv`/`join`/`thread::sleep`.
pub const GUARD_ACROSS_BLOCKING: &str = "guard-across-blocking";
/// The clock-injection rule: `Instant::now()` outside the trace module's
/// clock seams, or inline clock reads in `record_at` arguments.
pub const CLOCK_INJECTION: &str = "clock-injection";
/// The panic-hygiene rule: unannotated panics inside `thread::spawn` bodies.
pub const PANIC_HYGIENE: &str = "panic-hygiene";
/// The bounded-send rule: a plain `.send(..)` on a bounded-channel sender
/// (`mpsc::sync_channel` / `SyncSender`) without a reasoned annotation.
pub const BOUNDED_SEND: &str = "bounded-send";
/// The shardstats-accessor rule: a `ShardStats` counter field mutated
/// directly (`stats.retries = n`, `stats.jobs += 1`) outside `metrics.rs`.
pub const SHARDSTATS_ACCESSOR: &str = "shardstats-accessor";
/// Meta-rule for malformed `lint:allow` annotations; not suppressible.
pub const ALLOW_HYGIENE: &str = "allow-hygiene";

/// Every suppressible rule, in report order.
pub const RULES: [&str; 6] = [
    POISON_SAFETY,
    GUARD_ACROSS_BLOCKING,
    CLOCK_INJECTION,
    PANIC_HYGIENE,
    BOUNDED_SEND,
    SHARDSTATS_ACCESSOR,
];

/// One violation: file, line, the invariant violated, and the fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Display path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule name (one of [`RULES`] or [`ALLOW_HYGIENE`]).
    pub rule: &'static str,
    /// What invariant was violated, concretely.
    pub message: String,
    /// How to fix it (or suppress it deliberately).
    pub hint: String,
}

/// One diagnostic that a `lint:allow(rule, reason)` annotation suppressed;
/// kept in the report so deliberate exceptions stay visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressedDiagnostic {
    /// Display path of the annotated file.
    pub file: String,
    /// 1-based line of the suppressed diagnostic.
    pub line: u32,
    /// The suppressed rule.
    pub rule: &'static str,
    /// The annotation's mandatory reason text.
    pub reason: String,
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Unsuppressed violations.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations a `lint:allow` annotation covered.
    pub suppressed: Vec<SuppressedDiagnostic>,
}

/// Lints one source file. `file` is the display path; its basename selects
/// file-scoped rules (the clock-seam rule applies to `trace.rs`).
pub fn lint_source(file: &str, source: &str) -> LintOutcome {
    let scanned = scan(source);
    let ctx = Ctx::new(file, &scanned);
    let mut raw = Vec::new();
    raw.extend(poison_safety(&ctx));
    raw.extend(guard_across_blocking(&ctx));
    raw.extend(clock_injection(&ctx));
    raw.extend(panic_hygiene(&ctx));
    raw.extend(bounded_send(&ctx));
    raw.extend(shardstats_accessor(&ctx));
    raw.sort_by_key(|d| (d.line, d.rule));

    let (allows, mut hygiene) = parse_allows(file, &scanned.comments);
    let mut out = LintOutcome::default();
    for diag in raw {
        match allows.iter().find(|a| a.covers(diag.rule, diag.line)) {
            Some(allow) => out.suppressed.push(SuppressedDiagnostic {
                file: diag.file,
                line: diag.line,
                rule: diag.rule,
                reason: allow.reason.clone(),
            }),
            None => out.diagnostics.push(diag),
        }
    }
    out.diagnostics.append(&mut hygiene);
    out.diagnostics.sort_by_key(|d| (d.line, d.rule));
    out
}

/// A parsed `lint:allow(rule, reason)` annotation. It covers diagnostics of
/// its rule on any line of its comment block and on the line directly below
/// the block (the annotated statement).
struct Allow {
    rule: &'static str,
    reason: String,
    start_line: u32,
    end_line: u32,
}

impl Allow {
    fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && line >= self.start_line && line <= self.end_line + 1
    }
}

fn parse_allows(file: &str, comments: &[Comment]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for comment in comments {
        // Doc comments describe the annotation syntax (this crate's own
        // docs do!); only regular comments can apply it.
        if comment.doc {
            continue;
        }
        let mut rest = comment.text.as_str();
        while let Some(at) = rest.find("lint:allow") {
            rest = &rest[at + "lint:allow".len()..];
            let Some(open) = rest.trim_start().strip_prefix('(') else {
                diags.push(allow_hygiene(
                    file,
                    comment.start_line,
                    "`lint:allow` must be followed by `(rule, reason)`",
                ));
                continue;
            };
            let Some(close) = open.find(')') else {
                diags.push(allow_hygiene(
                    file,
                    comment.start_line,
                    "unterminated `lint:allow(` annotation",
                ));
                break;
            };
            let body = &open[..close];
            rest = &open[close + 1..];
            let (rule_name, reason) = match body.split_once(',') {
                Some((r, reason)) => (r.trim(), reason.trim()),
                None => (body.trim(), ""),
            };
            let Some(rule) = RULES.iter().find(|r| **r == rule_name) else {
                diags.push(allow_hygiene(
                    file,
                    comment.start_line,
                    &format!("`lint:allow` names unknown rule `{rule_name}`"),
                ));
                continue;
            };
            if reason.is_empty() {
                diags.push(allow_hygiene(
                    file,
                    comment.start_line,
                    &format!(
                        "`lint:allow({rule})` is missing its reason — suppression must say *why* \
                         the invariant holds here"
                    ),
                ));
                continue;
            }
            allows.push(Allow {
                rule,
                reason: reason.to_string(),
                start_line: comment.start_line,
                end_line: comment.end_line,
            });
        }
    }
    (allows, diags)
}

fn allow_hygiene(file: &str, line: u32, message: &str) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule: ALLOW_HYGIENE,
        message: message.to_string(),
        hint: "write `// lint:allow(rule-name, reason)` with a non-empty reason".to_string(),
    }
}

/// Token-stream context shared by the rules: nesting depths and enclosing
/// function names, precomputed in one pass.
struct Ctx<'a> {
    file: &'a str,
    basename: &'a str,
    tokens: &'a [Token],
    /// Brace-nesting level *containing* each token (an opening `{` carries
    /// the outer level; so does its matching `}`).
    brace_depth: Vec<u32>,
    /// Combined `(`/`[` nesting level containing each token.
    group_depth: Vec<u32>,
    /// Name of the innermost `fn` whose body contains each token.
    enclosing_fn: Vec<Option<usize>>,
    fn_names: Vec<String>,
}

impl<'a> Ctx<'a> {
    fn new(file: &'a str, scanned: &'a ScannedFile) -> Ctx<'a> {
        let tokens = &scanned.tokens;
        let mut brace_depth = Vec::with_capacity(tokens.len());
        let mut group_depth = Vec::with_capacity(tokens.len());
        let mut enclosing_fn = Vec::with_capacity(tokens.len());
        let mut fn_names: Vec<String> = Vec::new();
        // (brace level the body's `{` sits at, fn_names index)
        let mut fn_stack: Vec<(u32, usize)> = Vec::new();
        // Set after `fn name`, consumed by the body's `{` (or dropped by a
        // `;` — a bodyless trait/extern declaration).
        let mut pending_fn: Option<usize> = None;
        let (mut braces, mut groups) = (0u32, 0u32);
        for (i, tok) in tokens.iter().enumerate() {
            let (mut b, mut g) = (braces, groups);
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "{" => braces += 1,
                    "}" => {
                        braces = braces.saturating_sub(1);
                        b = braces;
                    }
                    "(" | "[" => groups += 1,
                    ")" | "]" => {
                        groups = groups.saturating_sub(1);
                        g = groups;
                    }
                    _ => {}
                }
            }
            brace_depth.push(b);
            group_depth.push(g);
            enclosing_fn.push(fn_stack.last().map(|&(_, name)| name));
            if tok.kind == TokenKind::Ident && tok.text == "fn" {
                if let Some(next) = tokens.get(i + 1) {
                    if next.kind == TokenKind::Ident {
                        fn_names.push(next.text.clone());
                        pending_fn = Some(fn_names.len() - 1);
                    }
                }
            } else if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "{" if groups == 0 => {
                        if let Some(name) = pending_fn.take() {
                            fn_stack.push((b, name));
                            // The body itself is attributed to the fn.
                            *enclosing_fn.last_mut().expect("just pushed") = Some(name);
                        }
                    }
                    ";" if groups == 0 => {
                        pending_fn = None;
                    }
                    "}" => {
                        if let Some(&(open_depth, _)) = fn_stack.last() {
                            if open_depth == b {
                                fn_stack.pop();
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        Ctx {
            file,
            basename: file.rsplit(['/', '\\']).next().unwrap_or(file),
            tokens,
            brace_depth,
            group_depth,
            enclosing_fn,
            fn_names,
        }
    }

    fn is_p(&self, i: usize, s: &str) -> bool {
        matches!(self.tokens.get(i), Some(t) if t.kind == TokenKind::Punct && t.text == s)
    }

    fn is_i(&self, i: usize, s: &str) -> bool {
        matches!(self.tokens.get(i), Some(t) if t.kind == TokenKind::Ident && t.text == s)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i) {
            Some(t) if t.kind == TokenKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> u32 {
        self.tokens[i].line
    }

    fn fn_name_at(&self, i: usize) -> Option<&str> {
        self.enclosing_fn[i].map(|idx| self.fn_names[idx].as_str())
    }

    /// Index just past the bracket group opened at `open` (`(`, `[` or `{`).
    fn close_of_group(&self, open: usize) -> usize {
        let (o, c) = match self.tokens[open].text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => ("{", "}"),
        };
        let mut depth = 0i64;
        for i in open..self.tokens.len() {
            if self.is_p(i, o) {
                depth += 1;
            } else if self.is_p(i, c) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    /// Matches `.lock()` starting at the `.` token.
    fn is_lock_call(&self, i: usize) -> bool {
        self.is_p(i, ".")
            && self.is_i(i + 1, "lock")
            && self.is_p(i + 2, "(")
            && self.is_p(i + 3, ")")
    }

    /// Matches `Instant::now` starting at the `Instant` token.
    fn is_instant_now(&self, i: usize) -> bool {
        self.is_i(i, "Instant")
            && self.is_p(i + 1, ":")
            && self.is_p(i + 2, ":")
            && self.is_i(i + 3, "now")
    }

    fn diag(&self, i: usize, rule: &'static str, message: String, hint: &str) -> Diagnostic {
        Diagnostic {
            file: self.file.to_string(),
            line: self.line(i),
            rule,
            message,
            hint: hint.to_string(),
        }
    }
}

/// **poison-safety** — `.lock().unwrap()` / `.lock().expect(..)` is
/// forbidden: pipeline threads must survive std mutex poisoning (the
/// engine's own `poisoned` flag is the failure signal), and an `unwrap`
/// reached while another panic is unwinding panics-within-panic and aborts
/// the process. Required idiom: `.lock().unwrap_or_else(PoisonError::
/// into_inner)` or the module's named lock accessor.
fn poison_safety(ctx: &Ctx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..ctx.tokens.len() {
        if !ctx.is_lock_call(i) || !ctx.is_p(i + 4, ".") {
            continue;
        }
        let Some(method) = ctx.ident(i + 5) else {
            continue;
        };
        if (method == "unwrap" || method == "expect") && ctx.is_p(i + 6, "(") {
            out.push(ctx.diag(
                i + 5,
                POISON_SAFETY,
                format!(
                    "`.lock().{method}(..)` on a pipeline mutex: it panics again if the mutex \
                     was poisoned — during an unwind that is a panic-within-panic, which aborts \
                     the process instead of letting the engine's poison flag report the failure"
                ),
                "recover the guard with `.lock().unwrap_or_else(PoisonError::into_inner)` or \
                 route through the module's named lock accessor",
            ));
        }
    }
    out
}

/// A tracked `MutexGuard` binding for the guard-across-blocking rule.
struct GuardBinding {
    name: String,
    /// Brace level of the `let`; the binding dies when that block closes.
    depth: u32,
    line: u32,
}

/// **guard-across-blocking** — a `let`-bound `MutexGuard` must not be live
/// across `.send(..)`, `.recv(..)`, `.recv_timeout(..)`, `.join(..)` or
/// `thread::sleep(..)`: blocking while holding a pipeline lock is the PR 5
/// completer deadlock class. `Condvar::wait` is the sanctioned way to block
/// with a guard (it releases the lock while parked), so it is not in the
/// blocking set.
///
/// A binding counts as a guard when its initializer's method chain *ends*
/// at `.lock()` (optionally followed by one `unwrap`/`expect`/
/// `unwrap_or_else` adapter) — `db.lock().…().collect()` temporaries drop
/// their guard at the end of the statement and are not tracked.
fn guard_across_blocking(ctx: &Ctx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut guards: Vec<GuardBinding> = Vec::new();
    let n = ctx.tokens.len();
    for i in 0..n {
        if ctx.is_p(i, "}") {
            let level = ctx.brace_depth[i];
            guards.retain(|g| g.depth <= level);
            continue;
        }
        // `drop(guard)` ends the region early.
        if ctx.is_i(i, "drop") && ctx.is_p(i + 1, "(") && ctx.is_p(i + 3, ")") {
            if let Some(name) = ctx.ident(i + 2) {
                guards.retain(|g| g.name != name);
            }
        }
        // Blocking call while a guard is live?
        if ctx.is_p(i, ".") && ctx.is_p(i + 2, "(") {
            if let Some(m) = ctx.ident(i + 1) {
                if matches!(m, "send" | "recv" | "recv_timeout" | "join") {
                    report_blocking(ctx, &guards, i + 1, &format!(".{m}(..)"), &mut out);
                }
            }
        }
        if ctx.is_i(i, "thread")
            && ctx.is_p(i + 1, ":")
            && ctx.is_p(i + 2, ":")
            && ctx.is_i(i + 3, "sleep")
        {
            report_blocking(ctx, &guards, i + 3, "thread::sleep(..)", &mut out);
        }
        // New guard binding?
        if !ctx.is_i(i, "let")
            || ctx.is_i(i.wrapping_sub(1), "if")
            || ctx.is_i(i.wrapping_sub(1), "while")
        {
            continue;
        }
        let mut j = i + 1;
        if ctx.is_i(j, "mut") {
            j += 1;
        }
        let Some(name) = ctx.ident(j) else {
            continue;
        };
        // Find the `=` (skipping a `: Type` annotation) and the terminating
        // `;` at the same nesting as the `let`.
        let (let_brace, let_group) = (ctx.brace_depth[i], ctx.group_depth[i]);
        let mut eq = None;
        for k in j + 1..n {
            if ctx.brace_depth[k] == let_brace && ctx.group_depth[k] == let_group {
                if ctx.is_p(k, "=") && !ctx.is_p(k + 1, "=") && !ctx.is_p(k.wrapping_sub(1), "=") {
                    eq = Some(k);
                    break;
                }
                if ctx.is_p(k, ";") {
                    break;
                }
            }
        }
        let Some(eq) = eq else { continue };
        let mut semi = None;
        for k in eq + 1..n {
            if ctx.is_p(k, ";")
                && ctx.brace_depth[k] == let_brace
                && ctx.group_depth[k] == let_group
            {
                semi = Some(k);
                break;
            }
        }
        let Some(semi) = semi else { continue };
        if initializer_yields_guard(ctx, eq + 1, semi) {
            guards.push(GuardBinding {
                name: name.to_string(),
                depth: let_brace,
                line: ctx.line(i),
            });
        }
    }
    out
}

/// Whether the initializer tokens in `(start..end)` end in a `.lock()` call
/// (with at most one poison adapter after it), i.e. the binding holds the
/// guard itself rather than something derived from a temporary guard.
fn initializer_yields_guard(ctx: &Ctx<'_>, start: usize, end: usize) -> bool {
    for i in start..end {
        if !ctx.is_lock_call(i) {
            continue;
        }
        let mut after = i + 4; // just past `.lock()`
        if ctx.is_p(after, ".") {
            match ctx.ident(after + 1) {
                Some("unwrap_or_else") | Some("unwrap") | Some("expect")
                    if ctx.is_p(after + 2, "(") =>
                {
                    after = ctx.close_of_group(after + 2) + 1;
                }
                _ => return false, // chain continues: guard is a temporary
            }
        }
        return after == end;
    }
    false
}

fn report_blocking(
    ctx: &Ctx<'_>,
    guards: &[GuardBinding],
    at: usize,
    call: &str,
    out: &mut Vec<Diagnostic>,
) {
    for guard in guards {
        out.push(ctx.diag(
            at,
            GUARD_ACROSS_BLOCKING,
            format!(
                "`MutexGuard` `{}` (locked on line {}) is still live across this blocking \
                 `{call}` call — blocking while holding a pipeline lock is the completer \
                 deadlock class",
                guard.name, guard.line
            ),
            "drop the guard before blocking (scope it in a block, or call `drop(guard)`), or \
             block through `Condvar::wait`, which releases the lock while parked",
        ));
    }
}

/// Functions allowed to read the clock directly: the trace epoch
/// constructor and the `record`/`now` convenience seams that wrap the
/// injectable `record_at` form.
const CLOCK_SEAMS: [&str; 3] = ["bounded", "now", "record"];

/// **clock-injection** — the tracing subsystem's "< 2% overhead when
/// disabled" contract requires that no clock is read on behalf of tracing
/// unless the sink is enabled. Two patterns break it:
///
/// 1. in `trace.rs`, an `Instant::now()` outside the designated seams
///    (every timestamp must derive from the shared epoch inside the
///    enabled branch), and
/// 2. anywhere, an inline `Instant::now()` / `.elapsed()` in the argument
///    list of a `.record_at(..)` call — the read then happens even when the
///    sink is disabled; the stamp must come through the injectable seam.
fn clock_injection(ctx: &Ctx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.basename == "trace.rs" {
        for i in 0..ctx.tokens.len() {
            if ctx.is_instant_now(i) && !is_clock_seam(ctx.fn_name_at(i)) {
                out.push(ctx.diag(
                    i,
                    CLOCK_INJECTION,
                    "`Instant::now()` outside the trace module's clock seams: timestamps must \
                     derive from the sink's shared epoch behind the enabled check, or disabled \
                     tracing pays a clock read on the hot path"
                        .to_string(),
                    "derive the stamp from the epoch inside the enabled branch (`TraceSink::now`),\
                     or add this fn to the seam set with a `lint:allow(clock-injection, ..)`",
                ));
            }
        }
    }
    for i in 0..ctx.tokens.len() {
        if !(ctx.is_p(i, ".") && ctx.is_i(i + 1, "record_at") && ctx.is_p(i + 2, "(")) {
            continue;
        }
        if is_clock_seam(ctx.fn_name_at(i)) {
            continue;
        }
        let close = ctx.close_of_group(i + 2);
        for k in i + 3..close {
            let inline_clock = ctx.is_instant_now(k)
                || (ctx.is_p(k, ".") && ctx.is_i(k + 1, "elapsed") && ctx.is_p(k + 2, "("));
            if inline_clock {
                out.push(ctx.diag(
                    k,
                    CLOCK_INJECTION,
                    "inline clock read in a `record_at(..)` argument: the read happens even \
                     when the trace sink is disabled, breaking the zero-cost-when-disabled \
                     contract"
                        .to_string(),
                    "take the stamp through the injectable seam (e.g. a caller-held `trace.now()`\
                     value) or hoist the read behind an `is_enabled()` check",
                ));
            }
        }
    }
    out
}

fn is_clock_seam(name: Option<&str>) -> bool {
    matches!(name, Some(n) if CLOCK_SEAMS.contains(&n))
}

/// **panic-hygiene** — inside a `thread::spawn` closure body, `unwrap`,
/// `expect`, panicking macros, and `[..]`-indexing of channel results must
/// carry an inline `lint:allow(panic-hygiene, reason)`: a panic on a
/// pipeline thread is how the engine's poison propagation starts, so every
/// potential panic site must be visibly deliberate.
///
/// The rule is syntactically local: it inspects the spawn closure's own
/// body, not the functions it calls (those run under the same
/// `PanicGuard`, but their panics are owned by their own modules).
fn panic_hygiene(ctx: &Ctx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = ctx.tokens.len();
    for i in 0..n {
        if !(ctx.is_i(i, "thread")
            && ctx.is_p(i + 1, ":")
            && ctx.is_p(i + 2, ":")
            && ctx.is_i(i + 3, "spawn"))
        {
            continue;
        }
        if !ctx.is_p(i + 4, "(") {
            continue;
        }
        let call_close = ctx.close_of_group(i + 4);
        // Locate the closure body: `(move? |args| { body })` — fall back to
        // the whole argument list when no block follows the closure head.
        let mut j = i + 5;
        if ctx.is_i(j, "move") {
            j += 1;
        }
        let (start, end) = if ctx.is_p(j, "|") {
            let mut params_end = j + 1;
            while params_end < call_close && !ctx.is_p(params_end, "|") {
                params_end += 1;
            }
            if ctx.is_p(params_end + 1, "{") {
                let close = ctx.close_of_group(params_end + 1);
                (params_end + 2, close)
            } else {
                (params_end + 1, call_close)
            }
        } else {
            (i + 5, call_close)
        };
        scan_spawn_body(ctx, start, end, &mut out);
    }
    out
}

fn scan_spawn_body(ctx: &Ctx<'_>, start: usize, end: usize, out: &mut Vec<Diagnostic>) {
    let hint = "handle the failure on the pipeline thread, or mark the panic deliberate with \
                `// lint:allow(panic-hygiene, why this panic is the intended poison signal)`";
    for k in start..end {
        if ctx.is_p(k, ".") && ctx.is_p(k + 2, "(") {
            match ctx.ident(k + 1) {
                Some("unwrap") if ctx.is_p(k + 3, ")") => {
                    out.push(
                        ctx.diag(
                            k + 1,
                            PANIC_HYGIENE,
                            "`.unwrap()` inside a `thread::spawn` body: an implicit panic here \
                         poisons the whole pipeline without the intent being visible"
                                .to_string(),
                            hint,
                        ),
                    );
                }
                Some("expect") => {
                    out.push(
                        ctx.diag(
                            k + 1,
                            PANIC_HYGIENE,
                            "`.expect(..)` inside a `thread::spawn` body: an implicit panic here \
                         poisons the whole pipeline without the intent being visible"
                                .to_string(),
                            hint,
                        ),
                    );
                }
                _ => {}
            }
        }
        if ctx.is_p(k + 1, "!") {
            if let Some(mac) = ctx.ident(k) {
                if matches!(mac, "panic" | "unreachable" | "todo" | "unimplemented") {
                    out.push(ctx.diag(
                        k,
                        PANIC_HYGIENE,
                        format!(
                            "`{mac}!(..)` inside a `thread::spawn` body: an explicit panic must \
                             be annotated as the deliberate poison signal it is"
                        ),
                        hint,
                    ));
                }
            }
        }
        // `[..]` indexing into a channel result: scan the current statement
        // prefix for a recv-family call feeding the indexed expression.
        if ctx.is_p(k, "[") {
            let indexable_before = ctx.is_p(k.wrapping_sub(1), ")")
                || ctx.is_p(k.wrapping_sub(1), "]")
                || ctx.ident(k.wrapping_sub(1)).is_some();
            if indexable_before {
                let mut s = k;
                while s > start {
                    if ctx.is_p(s - 1, ";") || ctx.is_p(s - 1, "{") || ctx.is_p(s - 1, "}") {
                        break;
                    }
                    s -= 1;
                }
                let mut e = k;
                while e < end && !ctx.is_p(e, ";") && !ctx.is_p(e, "{") && !ctx.is_p(e, "}") {
                    e += 1;
                }
                let feeds_from_channel = (s..e)
                    .any(|t| matches!(ctx.ident(t), Some("recv" | "try_recv" | "recv_timeout")));
                if feeds_from_channel {
                    out.push(
                        ctx.diag(
                            k,
                            PANIC_HYGIENE,
                            "`[..]`-indexing a channel result inside a `thread::spawn` body: an \
                         out-of-range index panics the pipeline thread implicitly"
                                .to_string(),
                            hint,
                        ),
                    );
                }
            }
        }
    }
}

/// **bounded-send** — a plain `.send(..)` on a *bounded* channel sender
/// blocks forever when the receiver stops draining, which on a pipeline
/// thread is the stuck-shutdown class the command-deadline machinery exists
/// for. Senders are recognized lexically: the first binding of a
/// `let (tx, rx) = mpsc::sync_channel(..)` destructuring, and any binding
/// annotated with a `SyncSender` type (fn params, struct fields). Each
/// plain `.send(..)` through such a name needs either the non-blocking
/// variants (`try_send`, `send_timeout` — exempt by construction) or a
/// reasoned `lint:allow(bounded-send, ..)` arguing its drain story.
fn bounded_send(ctx: &Ctx<'_>) -> Vec<Diagnostic> {
    let mut bounded: Vec<String> = Vec::new();
    let n = ctx.tokens.len();
    for i in 0..n {
        // `let (tx, rx) = mpsc::sync_channel(..)`: walk back from the call
        // to the destructuring `let (` and take the tuple's first binding.
        if ctx.is_i(i, "sync_channel") {
            let mut j = i;
            while j > 0 {
                if ctx.is_i(j, "let") && ctx.is_p(j + 1, "(") {
                    if let Some(name) = ctx.ident(j + 2) {
                        bounded.push(name.to_string());
                    }
                    break;
                }
                if ctx.is_p(j, ";") || ctx.is_p(j, "{") || ctx.is_p(j, "}") {
                    break;
                }
                j -= 1;
            }
        }
        // `name: SyncSender<..>` / `name: &SyncSender<..>`: walk back over
        // the type path to the annotated binding.
        if ctx.is_i(i, "SyncSender") {
            let mut j = i;
            while j > 0 {
                let prev = j - 1;
                let skip = match ctx.tokens.get(prev) {
                    Some(t) if t.kind == TokenKind::Punct => {
                        matches!(t.text.as_str(), ":" | "&" | "<" | "'")
                    }
                    Some(t) if t.kind == TokenKind::Ident => {
                        matches!(t.text.as_str(), "mpsc" | "std" | "sync" | "Option" | "Arc")
                            || ctx.is_p(prev.wrapping_sub(1), "'")
                    }
                    _ => false,
                };
                if !skip {
                    break;
                }
                j = prev;
            }
            let Some(j) = j.checked_sub(1) else {
                continue;
            };
            if ctx.is_p(j + 1, ":") {
                if let Some(name) = ctx.ident(j) {
                    bounded.push(name.to_string());
                }
            }
        }
    }
    let mut out = Vec::new();
    for i in 0..n {
        if ctx.is_p(i + 1, ".") && ctx.is_i(i + 2, "send") && ctx.is_p(i + 3, "(") {
            if let Some(name) = ctx.ident(i) {
                if bounded.iter().any(|b| b == name) {
                    out.push(ctx.diag(
                        i + 2,
                        BOUNDED_SEND,
                        format!(
                            "plain `.send(..)` on bounded sender `{name}`: when the receiver \
                             stops draining, this blocks the pipeline thread forever — the \
                             stuck-shutdown class the retry/deadline machinery exists for"
                        ),
                        "use `try_send`/`send_timeout` with explicit failure handling, or \
                         annotate with `// lint:allow(bounded-send, why the receiver always \
                         drains)` stating the drain story",
                    ));
                }
            }
        }
    }
    out
}

/// The `ShardStats` counter fields whose writes must go through named
/// accessors. Identity fields (`shard`, `dead`) are not counters and are
/// out of scope.
const SHARDSTATS_COUNTERS: [&str; 12] = [
    "busy",
    "jobs",
    "query_items",
    "coalesced_commands",
    "coalesced_members",
    "step3_jobs",
    "step3_items",
    "stolen_items",
    "peak_inflight",
    "faults",
    "retries",
    "failovers",
];

/// **shardstats-accessor** — `ShardStats` counter fields may only be
/// mutated through their named accessors; a direct `=`/`+=` (or any other
/// compound assignment) outside `metrics.rs` is a diagnostic. Funneling
/// every write through a named method keeps the accounting invariants —
/// which counter means what, who owns it, and when it is written — in one
/// reviewable place, so a new code path cannot silently skew the
/// `faults == retries` style cross-checks the fault suite asserts.
///
/// Receivers are recognized lexically: the identifier (or `[..]`-indexed
/// identifier) before the field access must contain `stats`
/// (case-insensitive), so `usage[shard].busy += w` on an unrelated struct
/// does not fire. Reads (`stats.jobs == 3`, `s.retries`) are untouched.
fn shardstats_accessor(ctx: &Ctx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // metrics.rs *is* the accessor module: the named methods' own field
    // writes (and the module's tests) live there by design.
    if ctx.basename == "metrics.rs" {
        return out;
    }
    let n = ctx.tokens.len();
    for i in 0..n {
        if !ctx.is_p(i, ".") {
            continue;
        }
        let Some(field) = ctx.ident(i + 1) else {
            continue;
        };
        if !SHARDSTATS_COUNTERS.contains(&field) {
            continue;
        }
        // A mutation is `field =` (but not `field ==`) or a compound
        // assignment `field op=`; puncts are single-char tokens.
        let op = if ctx.is_p(i + 2, "=") && !ctx.is_p(i + 3, "=") {
            "="
        } else if ["+", "-", "*", "/", "%", "|", "&", "^"]
            .iter()
            .any(|op| ctx.is_p(i + 2, op))
            && ctx.is_p(i + 3, "=")
        {
            "op="
        } else {
            continue;
        };
        // Walk back to the receiver identifier, skipping one `[..]` index
        // group (`shard_stats[i].retries = ..`).
        let mut j = i;
        if j > 0 && ctx.is_p(j - 1, "]") {
            let mut depth = 0i64;
            while j > 0 {
                j -= 1;
                if ctx.is_p(j, "]") {
                    depth += 1;
                } else if ctx.is_p(j, "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        }
        let Some(receiver) = j.checked_sub(1).and_then(|r| ctx.ident(r)) else {
            continue;
        };
        if !receiver.to_ascii_lowercase().contains("stats") {
            continue;
        }
        out.push(ctx.diag(
            i + 1,
            SHARDSTATS_ACCESSOR,
            format!(
                "direct `{op}` write to `ShardStats` counter field `{field}` (receiver \
                 `{receiver}`) outside `metrics.rs`: counter writes must go through the named \
                 accessors so the accounting invariants stay reviewable in one place"
            ),
            "route the write through the field's named accessor on `ShardStats` (adding one in \
             `metrics.rs` if missing), or annotate a deliberate exception with \
             `// lint:allow(shardstats-accessor, why this direct write is sound)`",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("test.rs", src).diagnostics
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        diags(src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn poison_safety_fires_on_unwrap_and_expect() {
        let src = "fn f() { let g = m.lock().unwrap(); }";
        assert_eq!(rules_of(src), vec![POISON_SAFETY]);
        let src = "fn f() { let g = m.lock().expect(\"poisoned\"); }";
        assert_eq!(rules_of(src), vec![POISON_SAFETY]);
    }

    #[test]
    fn poison_safety_accepts_the_into_inner_idiom() {
        let src = "fn f() { let g = m.lock().unwrap_or_else(PoisonError::into_inner); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn poison_safety_spans_lines_and_ignores_strings() {
        let src = "fn f() {\n    let g = m\n        .lock()\n        .unwrap();\n}";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4, "diag lands on the unwrap line");
        let src = "fn f() { let s = \".lock().unwrap()\"; }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn guard_across_blocking_fires_on_send_recv_join_sleep() {
        for call in ["tx.send(x)", "rx.recv()", "rx.recv_timeout(t)", "h.join()"] {
            let src = format!(
                "fn f() {{ let g = m.lock().unwrap_or_else(PoisonError::into_inner); {call}; }}"
            );
            assert_eq!(rules_of(&src), vec![GUARD_ACROSS_BLOCKING], "{call}");
        }
        let src = "fn f() { let g = m.lock(); thread::sleep(d); }";
        assert_eq!(rules_of(src), vec![GUARD_ACROSS_BLOCKING]);
    }

    #[test]
    fn guard_dies_at_scope_close_or_drop() {
        let src = "fn f() { { let g = m.lock(); } tx.send(x); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        let src = "fn f() { let g = m.lock(); drop(g); tx.send(x); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn condvar_wait_is_allow_listed() {
        let src = "fn f() { let mut g = m.lock(); while !done { g = cv.wait(g); } }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn consumed_guard_temporaries_are_not_tracked() {
        // The chain continues past `.lock()`, so the guard is a temporary
        // dropped at the end of the statement — sending afterwards is fine.
        let src = "fn f() { let v = m.lock().unwrap_or_else(PoisonError::into_inner).iter().collect(); tx.send(v); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn clock_injection_guards_trace_rs_seams() {
        let src = "impl S { fn bounded() { let e = Instant::now(); } fn hot(&self) { let t = Instant::now(); } }";
        let out = lint_source("crates/sched/src/trace.rs", src);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, CLOCK_INJECTION);
        // Same source under any other basename: no seam restriction.
        assert!(lint_source("other.rs", src).diagnostics.is_empty());
    }

    #[test]
    fn clock_injection_rejects_inline_reads_in_record_at() {
        let src = "fn hot(&self) { self.sink.record_at(Instant::now(), seq, kind); }";
        assert_eq!(rules_of(src), vec![CLOCK_INJECTION]);
        let src = "fn hot(&self) { self.sink.record_at(t0.elapsed(), seq, kind); }";
        assert_eq!(rules_of(src), vec![CLOCK_INJECTION]);
        // The convenience `record` seam wrapping `record_at` is the one
        // place an inline read is the design.
        let src = "fn record(&mut self) { self.record_at(Instant::now(), latency); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        // A caller-held stamp through the seam is the required idiom.
        let src = "fn hot(&self) { let at = self.sink.now(); self.sink.record_at(at, seq, kind); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn panic_hygiene_fires_inside_spawn_bodies_only() {
        let src = "fn f() { thread::spawn(move || { let x = rx.recv().unwrap(); }); }";
        assert_eq!(rules_of(src), vec![PANIC_HYGIENE]);
        let src = "fn f() { thread::spawn(move || { panic!(\"boom\"); }); }";
        assert_eq!(rules_of(src), vec![PANIC_HYGIENE]);
        let src = "fn f() { let x = rx.recv().unwrap(); }";
        assert!(
            diags(src).is_empty(),
            "outside spawn bodies is other rules' business"
        );
    }

    #[test]
    fn panic_hygiene_flags_indexing_channel_results() {
        let src = "fn f() { thread::spawn(move || { let x = buf[rx.try_recv().unwrap_or(0)]; }); }";
        assert_eq!(rules_of(src), vec![PANIC_HYGIENE]);
        let src = "fn f() { thread::spawn(move || { let x = table[i]; }); }";
        assert!(
            diags(src).is_empty(),
            "plain indexing is not channel indexing"
        );
    }

    #[test]
    fn bounded_send_fires_on_sync_channel_tuple_binding() {
        let src = "fn f() { let (tx, rx) = mpsc::sync_channel::<u32>(4); tx.send(1); }";
        assert_eq!(rules_of(src), vec![BOUNDED_SEND]);
    }

    #[test]
    fn bounded_send_fires_on_sync_sender_typed_params_and_fields() {
        let src = "fn f(s1_tx: &SyncSender<Job>) { s1_tx.send(job); }";
        assert_eq!(rules_of(src), vec![BOUNDED_SEND]);
        let src = "struct S { tx: std::sync::mpsc::SyncSender<u32> }\nfn f(s: &S) { tx.send(1); }";
        assert_eq!(rules_of(src), vec![BOUNDED_SEND]);
    }

    #[test]
    fn bounded_send_exempts_nonblocking_variants_and_unbounded_senders() {
        let src = "fn f() { let (tx, rx) = mpsc::sync_channel::<u32>(4); tx.try_send(1); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        let src = "fn f() { let (tx, rx) = mpsc::sync_channel::<u32>(4); tx.send_timeout(1, t); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        // Unbounded `mpsc::channel` senders never block: out of scope.
        let src = "fn f() { let (tx, rx) = mpsc::channel::<u32>(); tx.send(1); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        // A `use` import of the type is not a binding.
        let src = "use std::sync::mpsc::SyncSender;\nfn f() { other.send(1); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn bounded_send_allow_with_reason_suppresses() {
        let src = "fn f(s1_tx: &SyncSender<Job>) {\n    // lint:allow(bounded-send, the dispatcher drains until teardown)\n    s1_tx.send(job);\n}";
        let out = lint_source("test.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].rule, BOUNDED_SEND);
    }

    #[test]
    fn shardstats_accessor_fires_on_direct_counter_writes() {
        let src = "fn f(stats: &mut ShardStats) { stats.retries = 3; }";
        assert_eq!(rules_of(src), vec![SHARDSTATS_ACCESSOR]);
        let src = "fn f(stats: &mut ShardStats) { stats.jobs += 1; }";
        assert_eq!(rules_of(src), vec![SHARDSTATS_ACCESSOR]);
        let src = "fn f(shard_stats: &mut [ShardStats]) { shard_stats[i].coalesced_members += 2; }";
        assert_eq!(rules_of(src), vec![SHARDSTATS_ACCESSOR]);
    }

    #[test]
    fn shardstats_accessor_spares_reads_accessors_and_other_structs() {
        // Comparisons and reads are not writes.
        let src = "fn f(stats: &ShardStats) { assert!(stats.retries == 3); let j = stats.jobs; }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        // The named accessor is the required idiom.
        let src = "fn f(stats: &mut ShardStats) { stats.set_retries(3); }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        // Same field name on a non-stats receiver (e.g. `DeviceUsage`).
        let src = "fn f(usage: &mut [DeviceUsage]) { usage[shard].busy += width; }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        // Struct-literal construction is initialization, not mutation.
        let src = "fn f() -> ShardStats { ShardStats { jobs: served, ..ShardStats::default() } }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn shardstats_accessor_exempts_metrics_rs_and_honors_allow() {
        let src = "impl ShardStats { pub fn set_retries(&mut self, n: u64) { self.retries = n; } }";
        assert!(
            lint_source("crates/sched/src/metrics.rs", src)
                .diagnostics
                .is_empty(),
            "the accessor module owns the field writes"
        );
        // `self` does not contain `stats`, so accessor bodies outside
        // metrics.rs are also out of reach of the lexical heuristic —
        // but a stats-named receiver elsewhere is not.
        let src = "fn f() {\n    // lint:allow(shardstats-accessor, teardown aggregation owns these counters)\n    stats.failovers = n;\n}";
        let out = lint_source("other.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].rule, SHARDSTATS_ACCESSOR);
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_recorded() {
        let src = "fn f() {\n    // lint:allow(poison-safety, the mutex under test is poisoned\n    // deliberately)\n    let g = m.lock().unwrap();\n}";
        let out = lint_source("test.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].rule, POISON_SAFETY);
        assert!(out.suppressed[0].reason.contains("deliberately"));
    }

    #[test]
    fn allow_same_line_suppresses() {
        let src = "fn f() { let g = m.lock().unwrap(); } // lint:allow(poison-safety, test-only)";
        let out = lint_source("test.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_a_diagnostic() {
        let src = "fn f() {\n    // lint:allow(poison-safety)\n    let g = m.lock().unwrap();\n}";
        let out = lint_source("test.rs", src);
        let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&ALLOW_HYGIENE), "{rules:?}");
        assert!(
            rules.contains(&POISON_SAFETY),
            "a reasonless allow must not suppress: {rules:?}"
        );
    }

    #[test]
    fn allow_unknown_rule_is_a_diagnostic() {
        let src = "// lint:allow(made-up-rule, whatever)\nfn f() {}";
        let out = lint_source("test.rs", src);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, ALLOW_HYGIENE);
    }

    #[test]
    fn allow_does_not_cover_other_rules_or_far_lines() {
        let src = "fn f() {\n    // lint:allow(panic-hygiene, wrong rule)\n    let g = m.lock().unwrap();\n}";
        let out = lint_source("test.rs", src);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, POISON_SAFETY);
        let src = "// lint:allow(poison-safety, too far away)\nfn a() {}\nfn f() { let g = m.lock().unwrap(); }";
        let out = lint_source("test.rs", src);
        assert_eq!(out.diagnostics.len(), 1);
    }

    #[test]
    fn doc_comments_neither_suppress_nor_trip_allow_hygiene() {
        // Docs *describing* the syntax must not parse as annotations…
        let src = "//! Write `lint:allow(rule-name, reason)` above the line.\nfn f() {}";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
        // …and must not suppress a real diagnostic either.
        let src = "fn f() {\n    /// lint:allow(poison-safety, docs are not annotations)\n    let g = m.lock().unwrap();\n}";
        let out = lint_source("test.rs", src);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, POISON_SAFETY);
        assert!(out.suppressed.is_empty());
    }

    #[test]
    fn nested_closures_and_raw_strings_do_not_confuse_the_rules() {
        let src = r##"
fn f() {
    let body = r#"thread::spawn(|| { x.unwrap(); })"#;
    let run = |g: &str| {
        let inner = move || g.len();
        inner()
    };
    run(body);
}
"##;
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }
}
