//! `megis-lint` — a dependency-free static-analysis pass enforcing the
//! pipeline's concurrency invariants.
//!
//! Rustc and clippy cannot express the repo-specific rules the scheduler's
//! incident history produced, so this crate hand-rolls a small Rust token
//! scanner ([`scan`]) and a rule engine ([`rules`]) that walks every
//! workspace source file. Four rules:
//!
//! * **poison-safety** — `.lock().unwrap()` / `.lock().expect(..)` is
//!   forbidden. Pipeline threads must survive std mutex poisoning (the
//!   engine reports failures through its own poison flag), so guards are
//!   recovered with `.lock().unwrap_or_else(PoisonError::into_inner)` or a
//!   named lock accessor. The incident: a shutdown-path
//!   `stats_rx.lock().unwrap()` that would panic-within-panic (and abort)
//!   when shutdown ran during an unwind.
//!
//! * **guard-across-blocking** — a `let`-bound `MutexGuard` must not be
//!   live across `.send(..)`, `.recv(..)`, `.recv_timeout(..)`, `.join(..)`
//!   or `thread::sleep(..)`. Blocking while holding a pipeline lock is the
//!   completer-deadlock class from the PR 5 sharding work.
//!   `Condvar::wait` releases the lock while parked and is allow-listed.
//!
//! * **clock-injection** — the tracing subsystem promises < 2% overhead
//!   when disabled, which requires no clock reads on behalf of tracing
//!   unless the sink is enabled. `Instant::now()` in `trace.rs` outside the
//!   designated seams, or inline clock reads in `record_at(..)` arguments
//!   anywhere, break that contract.
//!
//! * **panic-hygiene** — `unwrap`/`expect`/panicking macros/indexing of
//!   channel results inside `thread::spawn` bodies must carry an inline
//!   annotation: a panic on a pipeline thread starts poison propagation,
//!   so it has to be visibly deliberate.
//!
//! Deliberate exceptions are annotated at the offending line (or the
//! comment block directly above it):
//!
//! ```text
//! // lint:allow(rule-name, why the invariant holds here)
//! ```
//!
//! The reason is mandatory; a reasonless or unknown-rule annotation is an
//! `allow-hygiene` diagnostic, which cannot be suppressed. Suppressions are
//! not silent — they are listed in the report and counted in the verdict
//! line.
//!
//! The binary (`cargo run --release -p megis-lint`) prints the listing,
//! writes a JSON artifact with `--out`, ends with a verdict line CI greps
//! (`megis lint: clean (...)`), and exits non-zero on any unsuppressed
//! diagnostic.

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]

pub mod report;
pub mod rules;
pub mod scan;

use report::LintReport;
use rules::lint_source;
use std::path::{Path, PathBuf};

/// Collects every workspace `.rs` file under `root`, sorted for
/// deterministic reports. Skips build output (`target/`), VCS metadata
/// (`.git/`) and lint fixtures (`fixtures/` — they contain deliberate
/// violations).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the given files, labeling diagnostics with paths relative to
/// `root` where possible.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in files {
        let source = std::fs::read_to_string(path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let outcome = lint_source(&label, &source);
        report.diagnostics.extend(outcome.diagnostics);
        report.suppressed.extend(outcome.suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Walks and lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let files = workspace_files(root)?;
    lint_files(root, &files)
}
