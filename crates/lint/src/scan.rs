//! A hand-rolled Rust token scanner.
//!
//! The build is offline, so the linter cannot use `syn` or `proc-macro2`;
//! this module provides the minimum lexical understanding the rule engine
//! needs instead: a flat token stream (identifiers, punctuation, literals,
//! lifetimes) with line numbers, plus the comment text (where `lint:allow`
//! annotations live).
//!
//! Getting the *lexical* layer right is what separates this from a grep:
//! the scanner understands line and (nested) block comments, string
//! literals with escapes, raw strings with arbitrary `#` fences, byte
//! strings, char literals vs. lifetimes, and raw identifiers — so a string
//! containing `".lock().unwrap()"` or a commented-out `thread::spawn` can
//! never trip a rule. Rules match only [`TokenKind::Ident`] and
//! [`TokenKind::Punct`] tokens.
//!
//! Consecutive `//` comment lines (with nothing but whitespace between
//! them) are merged into one [`Comment`] block, so a `lint:allow(rule,
//! reason)` annotation wrapped over several lines by rustfmt still parses
//! as a single annotation.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`let`, `lock`, `spawn`, …).
    Ident,
    /// A single punctuation character (`.`, `(`, `{`, `:`, …).
    Punct,
    /// A string/char/number literal. Rules never match inside these.
    Literal,
    /// A lifetime (`'a`). Distinct from char literals.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The token text (for [`TokenKind::Literal`], the raw source slice).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment block: a `/* … */` comment, or a run of consecutive `//`
/// lines merged together (so wrapped `lint:allow` annotations stay whole).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the block starts on.
    pub start_line: u32,
    /// 1-based line the block ends on.
    pub end_line: u32,
    /// Comment text with the `//` / `/*` markers stripped; merged lines are
    /// joined with a single space.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    /// `lint:allow` annotations live in regular comments only — doc
    /// comments *describe* the syntax, they never apply it.
    pub doc: bool,
}

/// The scanner's output for one source file.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment blocks in source order.
    pub comments: Vec<Comment>,
}

/// Scans one Rust source file into tokens and comment blocks.
///
/// The scanner is resilient rather than strict: unterminated strings or
/// comments simply end at EOF. It lexes the token-level language only — no
/// parsing, no macro expansion — which is exactly the level the rules are
/// specified at.
pub fn scan(source: &str) -> ScannedFile {
    Scanner {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: ScannedFile::default(),
        tokens_at_last_comment: usize::MAX,
    }
    .run()
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: ScannedFile,
    /// `out.tokens.len()` when the last comment was pushed; used to decide
    /// whether a new `//` line can merge with the previous block (merging is
    /// only valid when no code token appeared in between).
    tokens_at_last_comment: usize,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> ScannedFile {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'b' | 'r' if self.starts_string_prefix() => self.prefixed_string(),
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    // Raw identifier `r#type`: skip the fence, lex the ident.
                    self.bump();
                    self.bump();
                    self.ident();
                }
                '\'' => self.lifetime_or_char(),
                c if is_ident_start(Some(c)) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().expect("peeked");
                    self.push_token(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// `b"…"`, `br#"…"#`, `r"…"`, `r#"…"#` all start a (raw/byte) string.
    fn starts_string_prefix(&self) -> bool {
        let (mut i, c) = (1, self.peek(0));
        if c == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        match self.peek(i) {
            Some('"') => true,
            Some('#') => {
                // Consume the fence hashes; a raw string needs a quote after.
                let mut j = i;
                while self.peek(j) == Some('#') {
                    j += 1;
                }
                self.peek(j) == Some('"')
            }
            _ => false,
        }
    }

    fn line_comment(&mut self) {
        let start = self.line;
        self.bump();
        self.bump();
        // `///` and `//!` are doc comments (`////…` is not, per the
        // reference, but for annotation purposes it is close enough).
        let doc = matches!(self.peek(0), Some('/') | Some('!'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let text = text.trim().to_string();
        // Merge with the previous block when it is the `//` run directly
        // above (no code tokens in between): wrapped annotations stay whole.
        if self.tokens_at_last_comment == self.out.tokens.len() {
            if let Some(prev) = self.out.comments.last_mut() {
                if prev.end_line + 1 == start && prev.doc == doc {
                    if !prev.text.is_empty() && !text.is_empty() {
                        prev.text.push(' ');
                    }
                    prev.text.push_str(&text);
                    prev.end_line = start;
                    return;
                }
            }
        }
        self.out.comments.push(Comment {
            start_line: start,
            end_line: start,
            text,
            doc,
        });
        self.tokens_at_last_comment = self.out.tokens.len();
    }

    fn block_comment(&mut self) {
        let start = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('*') | Some('!')) && self.peek(1) != Some('/');
        let mut depth = 1u32;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            start_line: start,
            end_line: self.line,
            text: text.split_whitespace().collect::<Vec<_>>().join(" "),
            doc,
        });
        self.tokens_at_last_comment = self.out.tokens.len();
    }

    fn string_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        text.push(self.bump().expect("peeked"));
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Literal, text, line);
    }

    /// `b"…"` byte strings and `r#"…"#` raw (byte) strings with any fence.
    fn prefixed_string(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            if c == 'b' || c == 'r' {
                raw |= c == 'r';
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if !raw {
            // Plain byte string: same escape rules as a normal string.
            while let Some(c) = self.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(esc) = self.bump() {
                            text.push(esc);
                        }
                    }
                    '"' if text.len() > 2 => break,
                    _ => {}
                }
            }
            self.push_token(TokenKind::Literal, text, line);
            return;
        }
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            text.push('#');
            self.bump();
        }
        if self.peek(0) == Some('"') {
            text.push('"');
            self.bump();
        }
        // No escapes in raw strings: scan for `"` followed by `fence` hashes.
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut matched = 0usize;
                while matched < fence && self.peek(0) == Some('#') {
                    matched += 1;
                    text.push('#');
                    self.bump();
                }
                if matched == fence {
                    break;
                }
            }
        }
        self.push_token(TokenKind::Literal, text, line);
    }

    fn lifetime_or_char(&mut self) {
        let line = self.line;
        // `'a` / `'static` are lifetimes when not closed by a quote
        // (`'a'` is a char literal).
        if is_ident_start(self.peek(1)) && self.peek(2) != Some('\'') {
            self.bump();
            let mut text = String::from("'");
            while is_ident_continue(self.peek(0)) {
                text.push(self.bump().expect("peeked"));
            }
            self.push_token(TokenKind::Lifetime, text, line);
            return;
        }
        let mut text = String::new();
        text.push(self.bump().expect("peeked"));
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Literal, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while is_ident_continue(self.peek(0)) {
            text.push(self.bump().expect("peeked"));
        }
        self.push_token(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            text.push(self.bump().expect("peeked"));
        }
        // A fractional part only when the dot is followed by a digit, so
        // `0..4` lexes as `0`, `.`, `.`, `4`.
        if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().expect("peeked"));
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                text.push(self.bump().expect("peeked"));
            }
        }
        self.push_token(TokenKind::Literal, text, line);
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_ascii_alphabetic() || c == '_')
}

fn is_ident_continue(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &str) -> Vec<String> {
        scan(s)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r####"
            let a = "lock().unwrap() in a string";
            // lock().unwrap() in a comment
            /* thread::spawn in a /* nested */ block comment */
            let b = r#"raw "string" with .lock().unwrap()"#;
            let c = b"byte string .unwrap()";
        "####;
        let toks = idents(src);
        assert!(!toks.contains(&"lock".to_string()));
        assert!(!toks.contains(&"unwrap".to_string()));
        assert!(!toks.contains(&"spawn".to_string()));
        assert_eq!(
            toks,
            vec!["let", "a", "let", "b", "let", "c"],
            "only code identifiers survive"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let scanned = scan(src);
        let lifetimes: Vec<&Token> = scanned
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        assert!(scanned
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "with \" escaped quote and .unwrap()"; lock();"#;
        let toks = idents(src);
        assert_eq!(toks, vec!["let", "s", "lock"]);
    }

    #[test]
    fn consecutive_line_comments_merge_into_one_block() {
        let src = "\n// lint:allow(poison-safety, a reason\n// wrapped over lines)\nlet x = 1;\n// separate\n";
        let scanned = scan(src);
        assert_eq!(scanned.comments.len(), 2);
        assert_eq!(
            scanned.comments[0].text,
            "lint:allow(poison-safety, a reason wrapped over lines)"
        );
        assert_eq!(scanned.comments[0].start_line, 2);
        assert_eq!(scanned.comments[0].end_line, 3);
        assert_eq!(scanned.comments[1].text, "separate");
    }

    #[test]
    fn comments_separated_by_code_do_not_merge() {
        let src = "// one\nlet x = 1; // two\n";
        let scanned = scan(src);
        assert_eq!(scanned.comments.len(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = \"multi\nline\nstring\";\nlock();\n";
        let scanned = scan(src);
        let lock = scanned
            .tokens
            .iter()
            .find(|t| t.text == "lock")
            .expect("lock token");
        assert_eq!(lock.line, 4);
    }

    #[test]
    fn raw_fences_respect_hash_counts() {
        // The `"#` inside the body does not close a `##` fence.
        let src = "let s = r##\"contains \"# inner\"##; lock();";
        assert_eq!(idents(src), vec!["let", "s", "lock"]);
    }
}
