// Fixture: poison-safety violations. Both panic again on a poisoned mutex,
// which aborts the process if reached during an unwind.

fn reap(stats: &std::sync::Mutex<Vec<u64>>) -> Vec<u64> {
    let collected = stats.lock().unwrap().clone();
    collected
}

fn reap_with_message(stats: &std::sync::Mutex<Vec<u64>>) -> Vec<u64> {
    stats.lock().expect("stats mutex poisoned").clone()
}
