// Fixture: the sanctioned ways to feed a bounded channel — non-blocking
// `try_send`, `send_timeout` with explicit failure handling, an unbounded
// sender (never blocks), or a plain send carrying a reasoned annotation
// stating why the receiver always drains.

use std::sync::mpsc::{self, SyncSender};
use std::time::Duration;

fn try_send_never_blocks() {
    let (tx, rx) = mpsc::sync_channel::<u32>(4);
    if tx.try_send(7).is_err() {
        // Queue full: caller applies backpressure instead of parking.
    }
    let _ = rx.recv();
}

fn send_timeout_bounds_the_wait(worker_tx: &SyncSender<u32>) {
    let _ = worker_tx.send_timeout(7, Duration::from_millis(50));
}

fn unbounded_senders_are_out_of_scope() {
    // Named distinctly from the bounded `tx` above: the rule is lexical
    // and file-scoped, so a shared name would (rightly) stay suspect.
    let (event_tx, event_rx) = mpsc::channel::<u32>();
    event_tx.send(7).ok();
    let _ = event_rx.recv();
}

fn annotated_send_with_a_drain_story(s1_tx: &SyncSender<u32>) {
    // lint:allow(bounded-send, the receiver drains unconditionally until
    // teardown closes it, and a closed receiver returns Err immediately)
    s1_tx.send(7).ok();
}
