// Fixture: shardstats-accessor negative cases — accessor calls, reads,
// comparisons, struct-literal construction, same-named fields on other
// structs, and a reasoned suppression all stay clean.

fn accessors_are_the_idiom(stats: &mut ShardStats, state: &SharedState) {
    stats.set_peak_inflight(state.shard_inflight_peak[stats.shard]);
    stats.set_retries(state.shard_retries[stats.shard]);
    stats.set_failovers(state.shard_failovers[stats.shard]);
}

fn reads_and_comparisons(stats: &ShardStats) -> u64 {
    assert!(stats.retries == stats.faults);
    stats.jobs + stats.step3_jobs
}

fn literal_construction(served: u64) -> ShardStats {
    ShardStats {
        jobs: served,
        ..ShardStats::default()
    }
}

fn other_structs_share_field_names(usage: &mut [DeviceUsage], shard: usize, width: Duration) {
    // `usage` is not a stats receiver: the rule keys on the name.
    usage[shard].busy += width;
}

fn reasoned_exception(stats: &mut ShardStats) {
    // lint:allow(shardstats-accessor, fixture demonstrating a reviewed direct write)
    stats.stolen_items += 1;
}
