// Fixture: panic-hygiene violations — implicit and explicit panic sites
// inside `thread::spawn` bodies with no annotation.

use std::sync::mpsc::Receiver;
use std::thread;

fn unwrap_in_worker(rx: Receiver<u32>) {
    thread::spawn(move || {
        let value = rx.recv().unwrap();
        value + 1
    });
}

fn expect_in_worker(rx: Receiver<u32>) {
    thread::spawn(move || {
        let value = rx.recv().expect("channel closed");
        value + 1
    });
}

fn explicit_panic_in_worker() {
    thread::spawn(|| {
        panic!("worker gave up");
    });
}

fn index_channel_result_in_worker(rx: Receiver<usize>, table: Vec<u32>) {
    thread::spawn(move || {
        let slot = table[rx.recv().unwrap_or(0)];
        slot
    });
}
