// Fixture: shardstats-accessor violations — `ShardStats` counter fields
// mutated directly outside `metrics.rs` instead of through their named
// accessors: a plain assignment, a compound `+=`, and an `[..]`-indexed
// receiver (the teardown-aggregation shape).

fn aggregate_teardown(stats: &mut ShardStats, state: &SharedState) {
    stats.retries = state.shard_retries[stats.shard];
    stats.faults += 1;
}

fn bump_indexed(shard_stats: &mut [ShardStats], shard: usize) {
    shard_stats[shard].coalesced_members += 2;
}
