// Fixture: panic-hygiene clean patterns — handle channel failures on the
// pipeline thread, and panic freely *outside* spawn bodies (other rules'
// business, not this one's).

use std::sync::mpsc::Receiver;
use std::thread;

fn worker_handles_disconnect(rx: Receiver<u32>) {
    thread::spawn(move || {
        while let Ok(value) = rx.recv() {
            let _ = value;
        }
    });
}

fn worker_uses_get(rx: Receiver<usize>, table: Vec<u32>) {
    thread::spawn(move || {
        let index = rx.recv().unwrap_or(0);
        table.get(index).copied()
    });
}

fn panics_outside_spawn_are_not_this_rules_business(input: Option<u32>) -> u32 {
    input.unwrap()
}

fn plain_indexing_is_fine(table: &[u32], i: usize) -> u32 {
    table[i]
}
