// Fixture: tokenization traps. Every forbidden pattern below is inert —
// hidden in strings, raw strings, comments, or outside spawn bodies — so
// this file must lint clean.

use std::sync::{Mutex, PoisonError};
use std::thread;

// .lock().unwrap() in a comment is not code.
/* Neither is thread::spawn(|| { panic!("boom") })
   in a /* nested */ block comment. */

fn strings_hide_everything() -> Vec<String> {
    vec![
        "state.lock().unwrap()".to_string(),
        "tx.send(x) while holding the guard".to_string(),
        r#"thread::spawn(move || { rx.recv().unwrap() })"#.to_string(),
        r##"raw with "# inner fence: m.lock().expect("poisoned")"##.to_string(),
        String::from_utf8_lossy(b"Instant::now() in a byte string").into_owned(),
    ]
}

fn escaped_quotes_do_not_leak(m: &Mutex<u32>) -> u32 {
    let label = "say \"m.lock().unwrap()\" and stay clean";
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    label.len() as u32 + *guard
}

fn nested_closures_are_not_spawn_bodies(rx: std::sync::mpsc::Receiver<u32>) {
    // The unwrap lives in an inner closure run by the pipeline thread's
    // *caller*, not in a spawn body; only `outer`'s own body is in scope,
    // and it contains no panic site.
    let handle = thread::spawn(move || while rx.recv().is_ok() {});
    let outer = |h: thread::JoinHandle<()>| {
        let inner = move || h.join().is_ok();
        inner()
    };
    let _ = outer(handle);
}

fn lifetimes_are_not_chars<'a>(source: &'a str) -> &'a str {
    let marker = '\'';
    let _ = marker;
    source
}

fn r#match(range: std::ops::Range<usize>) -> usize {
    // Raw idents and `0..4`-style ranges lex cleanly.
    let windows = [0_usize; 4];
    windows[range.len() % 4]
}
