// Fixture: clock-injection violations outside trace.rs — inline clock
// reads in `record_at(..)` arguments pay the clock cost even when the
// trace sink is disabled.

use std::time::Instant;

struct Hot {
    sink: Sink,
}

struct Sink;

impl Sink {
    fn record_at(&self, _at: Instant, _seq: u64) {}
}

impl Hot {
    fn submit(&self, seq: u64) {
        self.sink.record_at(Instant::now(), seq);
    }

    fn complete(&self, t0: Instant, seq: u64) {
        self.sink.record_at(t0.elapsed(), seq);
    }
}
