// Fixture: well-formed allow annotations — every violation below is
// deliberately suppressed with a reason, so the file has no diagnostics but
// three recorded suppressions.

use std::sync::{Mutex, PoisonError};
use std::thread;

fn poison_test_helper(m: &Mutex<u32>) -> u32 {
    // lint:allow(poison-safety, this helper only runs in tests that never
    // poison the mutex, and a panic here is the desired test failure)
    *m.lock().unwrap()
}

fn delivery_under_lock(m: &Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    // lint:allow(guard-across-blocking, unbounded std mpsc send never blocks)
    tx.send(*guard).ok();
}

fn worker_with_deliberate_panic() {
    thread::spawn(|| {
        panic!("poison the pipeline on purpose"); // lint:allow(panic-hygiene, this panic is the poison signal under test)
    });
}
