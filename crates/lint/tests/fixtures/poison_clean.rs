// Fixture: the sanctioned poison-safe idioms — `PoisonError::into_inner`
// recovery and a named lock accessor built on it.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn reap(stats: &Mutex<Vec<u64>>) -> Vec<u64> {
    stats.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

struct Shared {
    inner: Mutex<Vec<u64>>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Vec<u64>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
