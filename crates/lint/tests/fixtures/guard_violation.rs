// Fixture: guard-across-blocking violations — a live `MutexGuard` across
// `send`, `recv` and `join` (the completer deadlock class).

use std::sync::{Mutex, PoisonError};

fn hold_across_send(m: &Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    tx.send(*guard).ok();
}

fn hold_across_recv(m: &Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) {
    let mut guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    if let Ok(v) = rx.recv() {
        *guard = v;
    }
}

fn hold_across_join(m: &Mutex<u32>, handle: std::thread::JoinHandle<()>) {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = handle.join();
    drop(guard);
}
