// Fixture: bounded-send violations — plain `.send(..)` through a bounded
// channel sender, both at the `sync_channel` creation site and through a
// `SyncSender`-typed parameter (the stuck-pipeline class).

use std::sync::mpsc::{self, SyncSender};

fn send_on_fresh_bounded_channel() {
    let (tx, rx) = mpsc::sync_channel::<u32>(4);
    tx.send(7).ok();
    let _ = rx.recv();
}

fn send_through_typed_param(s1_tx: &SyncSender<u32>, value: u32) {
    s1_tx.send(value).ok();
}
