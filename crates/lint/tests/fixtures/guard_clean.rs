// Fixture: the sanctioned ways to mix locks and blocking — scope the guard
// out before blocking, `drop` it explicitly, consume it as a statement
// temporary, or block through `Condvar::wait` (which releases the lock).

use std::sync::{Condvar, Mutex, PoisonError};

fn scope_then_send(m: &Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let value = {
        let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
        *guard
    };
    tx.send(value).ok();
}

fn drop_then_recv(m: &Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    drop(guard);
    let _ = rx.recv();
}

fn temporary_then_send(m: &Mutex<Vec<u32>>, tx: &std::sync::mpsc::Sender<Vec<u32>>) {
    // The chain continues past `.lock()`: the guard is a statement
    // temporary, already dropped when `send` runs.
    let snapshot: Vec<u32> = m
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .copied()
        .collect();
    tx.send(snapshot).ok();
}

fn condvar_wait_is_sanctioned(m: &Mutex<bool>, cv: &Condvar) {
    let mut ready = m.lock().unwrap_or_else(PoisonError::into_inner);
    while !*ready {
        ready = cv.wait(ready).unwrap_or_else(PoisonError::into_inner);
    }
}
