// Fixture: malformed allow annotations. A reasonless or unknown-rule
// annotation is an `allow-hygiene` diagnostic and suppresses nothing, so
// the underlying poison-safety violation still fires too.

use std::sync::Mutex;

fn reasonless(m: &Mutex<u32>) -> u32 {
    // lint:allow(poison-safety)
    *m.lock().unwrap()
}

// lint:allow(not-a-rule, the rule name does not exist)
fn unknown_rule() {}
