// Fixture: clock-injection violation in a file named `trace.rs` — the
// basename puts every fn outside the seam set under the epoch-only rule.

use std::time::Instant;

struct Sink {
    epoch: Instant,
}

impl Sink {
    // `bounded` is a designated seam: constructing the epoch is the one
    // legitimate direct clock read.
    fn bounded() -> Sink {
        Sink {
            epoch: Instant::now(),
        }
    }

    // Violation: a hot-path fn reading the clock directly instead of
    // deriving from the shared epoch behind the enabled check.
    fn push(&self) -> u64 {
        Instant::now().elapsed().as_nanos() as u64
    }
}
