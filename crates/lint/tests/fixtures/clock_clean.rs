// Fixture: the sanctioned clock idioms outside `trace.rs` — direct
// `Instant::now()` is fine in engine code (only `trace.rs` is restricted
// to seams), and `record_at` is fine when the stamp comes through the
// injectable seam rather than an inline read.

use std::time::Instant;

struct Engine {
    sink: Sink,
}

struct Sink;

impl Sink {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn record_at(&self, _at: Instant, _seq: u64) {}

    // The `record` convenience seam is the one wrapper allowed to read
    // inline on behalf of `record_at`.
    fn record(&self, seq: u64) {
        self.record_at(Instant::now(), seq);
    }
}

impl Engine {
    fn measure(&self) -> std::time::Duration {
        // Engine latency measurement is not tracing: unrestricted here.
        let t0 = Instant::now();
        t0.elapsed()
    }

    fn submit(&self, seq: u64) {
        let at = self.sink.now();
        self.sink.record_at(at, seq);
    }
}
