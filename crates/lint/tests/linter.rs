//! Integration tests: the fixture corpus (each rule's positive and
//! negative cases, tokenization traps, annotation handling) and the
//! self-check that the live workspace lints clean.

use megis_lint::report::LintReport;
use megis_lint::rules::{
    lint_source, LintOutcome, ALLOW_HYGIENE, BOUNDED_SEND, CLOCK_INJECTION, GUARD_ACROSS_BLOCKING,
    PANIC_HYGIENE, POISON_SAFETY, SHARDSTATS_ACCESSOR,
};
use std::path::{Path, PathBuf};

fn fixture(rel: &str) -> LintOutcome {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    // The display label preserves the basename, which the clock rule keys on.
    lint_source(&format!("tests/fixtures/{rel}"), &source)
}

fn rule_counts(outcome: &LintOutcome, rule: &str) -> usize {
    outcome
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .count()
}

#[test]
fn poison_fixtures() {
    let bad = fixture("poison_violation.rs");
    assert_eq!(rule_counts(&bad, POISON_SAFETY), 2, "{:?}", bad.diagnostics);
    assert_eq!(bad.diagnostics.len(), 2);
    assert!(bad
        .diagnostics
        .iter()
        .all(|d| d.hint.contains("PoisonError::into_inner")));

    let good = fixture("poison_clean.rs");
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn guard_fixtures() {
    let bad = fixture("guard_violation.rs");
    assert_eq!(
        rule_counts(&bad, GUARD_ACROSS_BLOCKING),
        3,
        "{:?}",
        bad.diagnostics
    );
    assert_eq!(bad.diagnostics.len(), 3);
    // Each diagnostic names the guard and where it was locked.
    assert!(bad
        .diagnostics
        .iter()
        .all(|d| d.message.contains("`guard`")));

    let good = fixture("guard_clean.rs");
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn clock_fixtures() {
    // Basename `trace.rs` puts non-seam fns under the epoch-only rule.
    let bad = fixture("clock/trace.rs");
    assert_eq!(
        rule_counts(&bad, CLOCK_INJECTION),
        1,
        "{:?}",
        bad.diagnostics
    );
    assert_eq!(bad.diagnostics.len(), 1);

    let bad = fixture("clock_record_at_violation.rs");
    assert_eq!(
        rule_counts(&bad, CLOCK_INJECTION),
        2,
        "{:?}",
        bad.diagnostics
    );
    assert_eq!(bad.diagnostics.len(), 2);

    let good = fixture("clock_clean.rs");
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn hygiene_fixtures() {
    let bad = fixture("hygiene_violation.rs");
    assert_eq!(rule_counts(&bad, PANIC_HYGIENE), 4, "{:?}", bad.diagnostics);
    assert_eq!(bad.diagnostics.len(), 4);

    let good = fixture("hygiene_clean.rs");
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn bounded_send_fixtures() {
    let bad = fixture("bounded_send_violation.rs");
    assert_eq!(rule_counts(&bad, BOUNDED_SEND), 2, "{:?}", bad.diagnostics);
    assert_eq!(bad.diagnostics.len(), 2);
    assert!(bad.diagnostics.iter().all(|d| d.hint.contains("try_send")));

    let good = fixture("bounded_send_clean.rs");
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
    // The reasoned annotation is recorded, not silently dropped.
    assert_eq!(good.suppressed.len(), 1);
    assert_eq!(good.suppressed[0].rule, BOUNDED_SEND);
}

#[test]
fn shardstats_fixtures() {
    let bad = fixture("shardstats_violation.rs");
    assert_eq!(
        rule_counts(&bad, SHARDSTATS_ACCESSOR),
        3,
        "{:?}",
        bad.diagnostics
    );
    assert_eq!(bad.diagnostics.len(), 3);
    assert!(bad.diagnostics.iter().all(|d| d.hint.contains("accessor")));

    let good = fixture("shardstats_clean.rs");
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
    // The reasoned direct-write annotation is recorded, not dropped.
    assert_eq!(good.suppressed.len(), 1);
    assert_eq!(good.suppressed[0].rule, SHARDSTATS_ACCESSOR);
}

#[test]
fn tokenizer_traps_stay_clean() {
    let out = fixture("tokenizer_tricky.rs");
    assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    assert!(out.suppressed.is_empty());
}

#[test]
fn allow_fixtures() {
    let suppressed = fixture("allow_suppressed.rs");
    assert!(
        suppressed.diagnostics.is_empty(),
        "{:?}",
        suppressed.diagnostics
    );
    assert_eq!(suppressed.suppressed.len(), 3);
    let rules: Vec<&str> = suppressed.suppressed.iter().map(|s| s.rule).collect();
    assert!(rules.contains(&POISON_SAFETY));
    assert!(rules.contains(&GUARD_ACROSS_BLOCKING));
    assert!(rules.contains(&PANIC_HYGIENE));
    assert!(suppressed.suppressed.iter().all(|s| !s.reason.is_empty()));

    let malformed = fixture("allow_missing_reason.rs");
    assert_eq!(
        rule_counts(&malformed, ALLOW_HYGIENE),
        2,
        "{:?}",
        malformed.diagnostics
    );
    assert_eq!(
        rule_counts(&malformed, POISON_SAFETY),
        1,
        "a reasonless annotation must not suppress: {:?}",
        malformed.diagnostics
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// The self-check the CI lint step relies on: the live workspace has no
/// unsuppressed violations, and every suppression in it carries a reason.
#[test]
fn live_workspace_lints_clean() {
    let root = workspace_root();
    let report = megis_lint::lint_workspace(&root).expect("lint workspace");
    assert!(
        report.files_scanned > 50,
        "workspace walk found only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has unsuppressed violations:\n{}",
        report.render_text()
    );
    assert!(report.verdict_line().contains("megis lint: clean"));
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
}

/// The fixture corpus contains deliberate violations; the workspace walk
/// must skip it or the self-check above would be meaningless.
#[test]
fn workspace_walk_skips_fixtures_and_target() {
    let root = workspace_root();
    let files = megis_lint::workspace_files(&root).expect("walk workspace");
    assert!(!files.is_empty());
    for file in &files {
        let s = file.to_string_lossy();
        assert!(!s.contains("fixtures"), "fixture leaked into the walk: {s}");
        assert!(
            !s.contains("/target/"),
            "build output leaked into the walk: {s}"
        );
    }
}

/// Acceptance criterion from the issue: reintroducing the historical
/// `stats_rx.lock().unwrap()` in the scheduler's shutdown path must fail
/// the lint step. Simulated by linting the live service.rs with the fix
/// reverted textually.
#[test]
fn reintroducing_the_service_shutdown_bug_is_caught() {
    let root = workspace_root();
    let service = root.join("crates/sched/src/service.rs");
    let source = std::fs::read_to_string(&service).expect("read service.rs");
    let fixed =
        ".lock()\n            .unwrap_or_else(PoisonError::into_inner)\n            .try_iter()";
    assert!(
        source.contains(fixed),
        "service.rs shutdown path no longer matches the poison-safe idiom this test reverts"
    );
    let reverted = source.replace(
        fixed,
        ".lock()\n            .unwrap()\n            .try_iter()",
    );

    let clean = lint_source("crates/sched/src/service.rs", &source);
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);
    let broken = lint_source("crates/sched/src/service.rs", &reverted);
    assert_eq!(
        rule_counts(&broken, POISON_SAFETY),
        1,
        "the reverted shutdown bug must produce exactly one poison-safety diagnostic: {:?}",
        broken.diagnostics
    );

    // And a dirty report's verdict is not grepable as clean.
    let report = LintReport {
        files_scanned: 1,
        diagnostics: broken.diagnostics,
        suppressed: broken.suppressed,
    };
    assert!(!report.render_text().contains("megis lint: clean"));
    assert!(report.to_json().contains("\"clean\": false"));
}
