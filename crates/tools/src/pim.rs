//! Sieve-style PIM-accelerated Kraken2 baseline (Fig. 19).
//!
//! The paper's strongest hardware baseline integrates a processing-in-memory
//! k-mer matching accelerator (Sieve) into the Kraken2 pipeline. The PIM
//! accelerator removes the k-mer matching compute bottleneck, but the
//! database must still be loaded from storage into (PIM-enabled) main memory,
//! so the I/O overhead — the part MegIS eliminates — remains and, relatively,
//! grows (§3.2, §6.1 "Comparison to a PIM Accelerator").

use megis_host::system::SystemConfig;

use crate::timing::Breakdown;
use crate::workload::WorkloadSpec;

/// Paper-scale performance model of Kraken2 with Sieve k-mer matching.
#[derive(Debug, Clone, Copy, Default)]
pub struct PimAcceleratedKraken;

impl PimAcceleratedKraken {
    /// Timing breakdown of end-to-end presence/absence identification.
    ///
    /// Phases: database load into the PIM-enabled memory, k-mer matching on
    /// the PIM accelerator, and the remaining host-side classification work
    /// (per-read taxon resolution), which Sieve does not accelerate.
    pub fn presence_breakdown(&self, system: &SystemConfig, workload: &WorkloadSpec) -> Breakdown {
        let matcher = system.pim_matcher.unwrap_or_default();
        let mut b = Breakdown::new(format!("PIM-accelerated P-Opt ({})", workload.label));

        let db = workload.kraken_db;
        let load = db.time_at(system.aggregate_external_read_bandwidth());
        let chunks = system.memory.chunks_needed(db);
        let matching = matcher.matching_time(workload.kraken_query_kmers()) * chunks as f64;
        // Per-read classification (taxon resolution over the hit lists) stays
        // on the host; it is a small fraction of the software classification.
        let host_resolve = system.cpu.stream_merge_time(workload.reads * 8);

        b.push_phase("database load (I/O)", load);
        b.push_phase("k-mer matching (PIM)", matching);
        b.push_phase("read classification (host)", host_resolve);
        b.external_io = db;
        b.internal_io = db;
        b.ssd_busy = load;
        b.accelerator_busy = matching;
        // The host stays busy orchestrating the PIM accelerator and resolving
        // per-read classifications while matching runs.
        b.host_busy = host_resolve + matching;
        b
    }

    /// Speedup of the hypothetical No-I/O configuration over this one — the
    /// quantity the paper uses in §3.2 to show that removing other bottlenecks
    /// makes the I/O overhead relatively larger.
    pub fn no_io_speedup(&self, system: &SystemConfig, workload: &WorkloadSpec) -> f64 {
        let b = self.presence_breakdown(system, workload);
        let with_io = b.total();
        let without_io = with_io.saturating_sub(b.phase("database load (I/O)").unwrap());
        if without_io.is_zero() {
            f64::INFINITY
        } else {
            with_io / without_io
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kraken::KrakenTimingModel;
    use megis_genomics::sample::Diversity;
    use megis_host::accelerators::PimKmerMatcher;
    use megis_ssd::config::SsdConfig;

    fn system(ssd: SsdConfig) -> SystemConfig {
        SystemConfig::reference(ssd).with_pim_matcher(PimKmerMatcher::default())
    }

    #[test]
    fn pim_is_faster_than_software_kraken() {
        let w = WorkloadSpec::cami(Diversity::Medium);
        for ssd in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
            let sys = system(ssd);
            let pim = PimAcceleratedKraken.presence_breakdown(&sys, &w);
            let sw = KrakenTimingModel.presence_breakdown(&sys, &w);
            assert!(pim.total() < sw.total());
        }
    }

    #[test]
    fn io_dominates_the_pim_baseline() {
        let w = WorkloadSpec::cami(Diversity::Medium);
        let sys = system(SsdConfig::ssd_c());
        let b = PimAcceleratedKraken.presence_breakdown(&sys, &w);
        let load = b.phase("database load (I/O)").unwrap();
        assert!(load.as_secs() / b.total().as_secs() > 0.8);
    }

    #[test]
    fn no_io_speedup_matches_paper_scale() {
        // §3.2: for the 0.3–0.6 TB Kraken2 databases, No-I/O is on average
        // ~26× (SSD-C) and ~3× (SSD-P) faster than the PIM baseline with I/O.
        let w = WorkloadSpec::cami(Diversity::Medium);
        let sata = PimAcceleratedKraken.no_io_speedup(&system(SsdConfig::ssd_c()), &w);
        let nvme = PimAcceleratedKraken.no_io_speedup(&system(SsdConfig::ssd_p()), &w);
        assert!(sata > 10.0 && sata < 45.0, "SSD-C No-I/O speedup {sata}");
        assert!(nvme > 1.5 && nvme < 6.0, "SSD-P No-I/O speedup {nvme}");
        assert!(sata > nvme);
    }
}
