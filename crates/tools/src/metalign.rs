//! Metalign-style accuracy-optimized baseline (S-Qry / A-Opt).
//!
//! The accuracy-optimized flow prepares the query set with KMC-style k-mer
//! counting and sorting, streams through a large *sorted* k-mer database to
//! find the intersecting k-mers, retrieves the taxIDs of the intersecting
//! k-mers from a CMash-style sketch structure, and (for abundance) maps the
//! reads against the reference genomes of the candidate species (§2.1.1).
//! MegIS keeps this flow's accuracy while moving the streaming-heavy stages
//! into the SSD.
//!
//! [`MetalignClassifier`] is the functional implementation;
//! [`MetalignTimingModel`] is the paper-scale performance model, which also
//! covers the **A-Opt+KSS** ablation (the software version of MegIS's K-mer
//! Sketch Streaming taxID retrieval, §6.1).

use std::collections::HashMap;

use megis_genomics::database::{ReferenceIndex, SortedKmerDatabase, UnifiedReferenceIndex};
use megis_genomics::kmer::Kmer;
use megis_genomics::profile::{AbundanceProfile, PresenceResult};
use megis_genomics::read::ReadSet;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::sketch::{SketchConfig, SketchDatabase};
use megis_genomics::taxonomy::TaxId;
use megis_host::system::SystemConfig;

use crate::kmc::{ExclusionPolicy, KmerCounts};
use crate::ternary::TernarySketchTree;
use crate::timing::Breakdown;
use crate::workload::WorkloadSpec;

/// Which taxID-retrieval structure the timed A-Opt model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaxIdRetrieval {
    /// CMash-style ternary-search-tree lookups (pointer chasing) — baseline
    /// A-Opt.
    CmashTree,
    /// MegIS's K-mer Sketch Streaming tables executed in software on the host
    /// — the A-Opt+KSS ablation of Fig. 12.
    KssSoftware,
}

/// Classification output of the functional S-Qry tool.
#[derive(Debug, Clone, Default)]
pub struct MetalignOutput {
    /// Sorted query k-mers that intersect the database.
    pub intersecting_kmers: Vec<Kmer>,
    /// Candidate species and the number of sketch matches supporting each.
    pub candidate_support: Vec<(TaxId, u32)>,
    /// Species reported present.
    pub presence: PresenceResult,
    /// Mapping-based abundance estimate (empty if abundance was not run).
    pub abundance: AbundanceProfile,
}

/// Functional Metalign-style classifier.
#[derive(Debug, Clone)]
pub struct MetalignClassifier {
    /// Sorted k-mer database at k = sketch k_max.
    database: SortedKmerDatabase,
    /// Logical sketch content.
    sketches: SketchDatabase,
    /// Ternary-tree representation used for taxID retrieval.
    tree: TernarySketchTree,
    /// Per-species mapping indexes for abundance estimation.
    reference_indexes: Vec<ReferenceIndex>,
    /// Seed length used for read mapping.
    mapping_k: usize,
    /// Minimum sketch matches for a species to be considered a candidate.
    min_support: u32,
    /// Minimum containment index (matched fraction of a taxon's sketch) for a
    /// species to be reported present.
    min_containment: f64,
}

impl MetalignClassifier {
    /// Builds all databases from a reference collection.
    ///
    /// The sorted k-mer database uses `sketch_config.k_max` so that
    /// intersecting k-mers can be looked up directly in the sketches.
    pub fn build(references: &ReferenceCollection, sketch_config: SketchConfig) -> Self {
        let database = SortedKmerDatabase::build(references, sketch_config.k_max);
        let sketches = SketchDatabase::build(references, sketch_config);
        let tree = TernarySketchTree::build(&sketches);
        let mapping_k = 15;
        let reference_indexes = references
            .genomes()
            .iter()
            .map(|g| ReferenceIndex::build(g, mapping_k))
            .collect();
        MetalignClassifier {
            database,
            sketches,
            tree,
            reference_indexes,
            mapping_k,
            min_support: 3,
            min_containment: 0.4,
        }
    }

    /// The sorted k-mer database.
    pub fn database(&self) -> &SortedKmerDatabase {
        &self.database
    }

    /// The logical sketch content.
    pub fn sketches(&self) -> &SketchDatabase {
        &self.sketches
    }

    /// Sets the minimum sketch-match support for presence calls.
    pub fn set_min_support(&mut self, min_support: u32) {
        self.min_support = min_support.max(1);
    }

    /// Runs presence/absence identification on a sample.
    pub fn identify_presence(&self, reads: &ReadSet) -> MetalignOutput {
        // Step 1 equivalent: extract, sort, (no) exclusion.
        let counts = KmerCounts::count(reads, self.database.k());
        let query_kmers = counts.apply_exclusion(ExclusionPolicy::default());
        // Step 2a: streaming intersection with the sorted database.
        let intersecting = self.database.intersect_sorted(&query_kmers);
        // Step 2b: taxID retrieval via the ternary sketch tree.
        let mut support: HashMap<TaxId, u32> = HashMap::new();
        for kmer in &intersecting {
            for tax in self.tree.lookup_with_prefixes(*kmer) {
                *support.entry(tax).or_insert(0) += 1;
            }
        }
        let presence =
            self.sketches
                .presence_from_support(&support, self.min_containment, self.min_support);
        let mut candidate_support: Vec<(TaxId, u32)> = support.into_iter().collect();
        candidate_support.sort();
        MetalignOutput {
            intersecting_kmers: intersecting,
            candidate_support,
            presence,
            abundance: AbundanceProfile::new(),
        }
    }

    /// Runs the full pipeline: presence identification followed by
    /// mapping-based abundance estimation against the candidate species.
    pub fn analyze(&self, reads: &ReadSet) -> MetalignOutput {
        let mut out = self.identify_presence(reads);
        let candidates: Vec<TaxId> = out.presence.taxa().to_vec();
        let candidate_indexes: Vec<ReferenceIndex> = self
            .reference_indexes
            .iter()
            .filter(|idx| candidates.contains(&idx.taxid()))
            .cloned()
            .collect();
        let unified = UnifiedReferenceIndex::merge(&candidate_indexes);
        let mut counts: HashMap<TaxId, u64> = HashMap::new();
        for read in reads.iter() {
            if let Some(t) = unified.map_read(read, self.mapping_k) {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        out.abundance = AbundanceProfile::from_counts(counts);
        out
    }
}

/// Paper-scale performance model of the S-Qry baseline (and its +KSS variant).
#[derive(Debug, Clone, Copy)]
pub struct MetalignTimingModel {
    /// Which taxID-retrieval structure to model.
    pub retrieval: TaxIdRetrieval,
}

impl Default for MetalignTimingModel {
    fn default() -> Self {
        MetalignTimingModel {
            retrieval: TaxIdRetrieval::CmashTree,
        }
    }
}

impl MetalignTimingModel {
    /// The baseline A-Opt model (CMash tree retrieval).
    pub fn a_opt() -> Self {
        MetalignTimingModel {
            retrieval: TaxIdRetrieval::CmashTree,
        }
    }

    /// The A-Opt+KSS ablation (software KSS retrieval).
    pub fn a_opt_with_kss() -> Self {
        MetalignTimingModel {
            retrieval: TaxIdRetrieval::KssSoftware,
        }
    }

    fn label(&self, workload: &WorkloadSpec) -> String {
        match self.retrieval {
            TaxIdRetrieval::CmashTree => format!("A-Opt ({})", workload.label),
            TaxIdRetrieval::KssSoftware => format!("A-Opt+KSS ({})", workload.label),
        }
    }

    /// Timing breakdown of presence/absence identification.
    pub fn presence_breakdown(&self, system: &SystemConfig, workload: &WorkloadSpec) -> Breakdown {
        let cpu = &system.cpu;
        let mut b = Breakdown::new(self.label(workload));

        // --- Query preparation (host) --------------------------------------
        let extraction = cpu.kmer_extraction_time(workload.total_bases())
            + cpu.format_convert_time(workload.total_bases());
        let mut sorting = match system.sorting_accelerator {
            Some(acc) => acc.sort_time(workload.extracted_kmers, 2 * workload.metalign_k / 8),
            None => cpu.sort_time(workload.extracted_kmers),
        };
        // If the extracted k-mer set does not fit in host DRAM, the surplus is
        // swapped to the SSD and read back during sorting.
        let overflow = system.memory.overflow(workload.extracted_kmer_bytes);
        if overflow.as_bytes() > 0 {
            let ssd = system.primary_ssd();
            let swap = overflow.time_at(ssd.external_write_bandwidth())
                + overflow.time_at(ssd.external_read_bandwidth());
            sorting += swap * 2.0;
            b.external_io += overflow + overflow;
        }

        // --- Intersection finding (host, streaming the database) ------------
        let db_entries = workload.metalign_db.as_bytes() / 19;
        let db_io = workload
            .metalign_db
            .time_at(system.aggregate_external_read_bandwidth());
        let merge_compute = cpu.stream_merge_time(db_entries + workload.selected_kmers);
        let intersection = db_io.max(merge_compute);

        // --- TaxID retrieval -------------------------------------------------
        let retrieval = match self.retrieval {
            TaxIdRetrieval::CmashTree => {
                let tree_io = workload
                    .sketch_tree
                    .time_at(system.aggregate_external_read_bandwidth());
                tree_io + cpu.tree_lookup_time(workload.intersecting_kmers)
            }
            TaxIdRetrieval::KssSoftware => {
                let kss_io = workload
                    .kss_tables
                    .time_at(system.aggregate_external_read_bandwidth());
                let kss_entries = workload.kss_tables.as_bytes() / 16;
                kss_io.max(cpu.stream_merge_time(kss_entries + workload.intersecting_kmers))
            }
        };

        b.push_phase("k-mer extraction", extraction);
        b.push_phase("sorting + k-mer exclusion", sorting);
        b.push_phase("intersection finding", intersection);
        b.push_phase("taxid retrieval", retrieval);

        b.external_io += workload.metalign_db
            + match self.retrieval {
                TaxIdRetrieval::CmashTree => workload.sketch_tree,
                TaxIdRetrieval::KssSoftware => workload.kss_tables,
            };
        b.internal_io = b.external_io;
        b.host_busy = extraction + sorting + merge_compute + retrieval;
        b.ssd_busy = db_io;
        b
    }

    /// Timing breakdown of the full pipeline including mapping-based
    /// abundance estimation (unified index built in software with the host
    /// CPU, mapping on the mapping accelerator as in §5).
    pub fn abundance_breakdown(&self, system: &SystemConfig, workload: &WorkloadSpec) -> Breakdown {
        let mut b = self.presence_breakdown(system, workload);
        let cpu = &system.cpu;
        // Unified index generation in software: read the candidate species'
        // indexes from storage and merge them on the host.
        let index_io = workload
            .candidate_reference_indexes
            .time_at(system.aggregate_external_read_bandwidth());
        let index_entries = workload.candidate_reference_indexes.as_bytes() / 12;
        // Software index construction (Minimap2-style) costs several passes
        // over the entries.
        let index_compute = cpu.stream_merge_time(index_entries * 4);
        let index_generation = index_io + index_compute;
        let mapping = system.mapping_accelerator.mapping_time(workload.reads);
        b.push_phase("unified index generation", index_generation);
        b.push_phase("read mapping", mapping);
        b.external_io += workload.candidate_reference_indexes;
        b.internal_io += workload.candidate_reference_indexes;
        b.host_busy += index_generation;
        b.accelerator_busy += mapping;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::metrics::ClassificationMetrics;
    use megis_genomics::sample::{CommunityConfig, Diversity};
    use megis_ssd::config::SsdConfig;

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_species(4)
            .with_reads(250)
            .with_database_species(16)
            .with_genome_len(1500)
            .build(101)
    }

    #[test]
    fn presence_recovers_true_species_with_high_f1() {
        let c = community();
        let clf = MetalignClassifier::build(c.references(), SketchConfig::small());
        let out = clf.identify_presence(c.sample().reads());
        let metrics = ClassificationMetrics::score(&out.presence, &c.truth_presence());
        assert!(
            metrics.recall() > 0.9,
            "recall too low: {}",
            metrics.recall()
        );
        assert!(metrics.f1() > 0.6, "F1 too low: {}", metrics.f1());
    }

    #[test]
    fn intersecting_kmers_are_sorted_and_in_database() {
        let c = community();
        let clf = MetalignClassifier::build(c.references(), SketchConfig::small());
        let out = clf.identify_presence(c.sample().reads());
        assert!(!out.intersecting_kmers.is_empty());
        assert!(out.intersecting_kmers.windows(2).all(|w| w[0] < w[1]));
        for k in out.intersecting_kmers.iter().take(25) {
            assert!(clf.database().lookup(*k).is_some());
        }
    }

    #[test]
    fn abundance_tracks_truth_reasonably() {
        let c = community();
        let clf = MetalignClassifier::build(c.references(), SketchConfig::small());
        let out = clf.analyze(c.sample().reads());
        assert!(!out.abundance.is_empty());
        let err = megis_genomics::metrics::AbundanceError::score(&out.abundance, c.truth_profile());
        assert!(err.l1_norm < 0.8, "L1 error too high: {}", err.l1_norm);
    }

    #[test]
    fn timing_is_io_bound_on_sata() {
        let system = SystemConfig::reference(SsdConfig::ssd_c());
        let w = WorkloadSpec::cami(Diversity::Low);
        let b = MetalignTimingModel::a_opt().presence_breakdown(&system, &w);
        let intersection = b.phase("intersection finding").unwrap();
        // 701 GB at 560 MB/s ≈ 1,250 s.
        assert!(intersection.as_secs() > 1100.0 && intersection.as_secs() < 1400.0);
        // Total lands near the ~1,700 s annotation of Fig. 13.
        assert!(b.total().as_secs() > 1400.0 && b.total().as_secs() < 2100.0);
    }

    #[test]
    fn timing_on_nvme_matches_fig13_scale() {
        let system = SystemConfig::reference(SsdConfig::ssd_p());
        let w = WorkloadSpec::cami(Diversity::Low);
        let b = MetalignTimingModel::a_opt().presence_breakdown(&system, &w);
        assert!(
            b.total().as_secs() > 280.0 && b.total().as_secs() < 550.0,
            "expected ≈400 s, got {}",
            b.total()
        );
    }

    #[test]
    fn kss_software_accelerates_taxid_retrieval() {
        let system = SystemConfig::reference(SsdConfig::ssd_p());
        let w = WorkloadSpec::cami(Diversity::Medium);
        let base = MetalignTimingModel::a_opt().presence_breakdown(&system, &w);
        let kss = MetalignTimingModel::a_opt_with_kss().presence_breakdown(&system, &w);
        assert!(kss.phase("taxid retrieval").unwrap() < base.phase("taxid retrieval").unwrap());
        assert!(kss.total() < base.total());
    }

    #[test]
    fn small_dram_penalizes_sorting() {
        let w = WorkloadSpec::cami(Diversity::Medium);
        let big = SystemConfig::reference(SsdConfig::ssd_c());
        let small = big
            .clone()
            .with_dram_capacity(megis_ssd::timing::ByteSize::from_gb(32.0));
        let b_big = MetalignTimingModel::a_opt().presence_breakdown(&big, &w);
        let b_small = MetalignTimingModel::a_opt().presence_breakdown(&small, &w);
        assert!(
            b_small.phase("sorting + k-mer exclusion").unwrap()
                > b_big.phase("sorting + k-mer exclusion").unwrap()
        );
    }

    #[test]
    fn abundance_adds_index_generation_and_mapping() {
        let system = SystemConfig::reference(SsdConfig::ssd_p());
        let w = WorkloadSpec::cami(Diversity::Low);
        let p = MetalignTimingModel::a_opt().presence_breakdown(&system, &w);
        let a = MetalignTimingModel::a_opt().abundance_breakdown(&system, &w);
        assert!(a.total() > p.total());
        assert!(a.phase("read mapping").is_some());
        assert!(a.phase("unified index generation").is_some());
    }
}
