//! Timing breakdowns shared by all timed models.
//!
//! Every timed analysis model in the workspace (the baselines in this crate
//! and the MegIS configurations in the `megis` core crate) reports its result
//! as a [`Breakdown`]: a list of named phases with durations, plus I/O
//! accounting used by the energy model and the data-movement analysis (§6.5).

use megis_ssd::timing::{ByteSize, SimDuration};

/// One named phase of an analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name (e.g. "k-mer extraction", "intersection finding").
    pub name: String,
    /// Wall-clock duration of the phase (after any overlap has been applied).
    pub duration: SimDuration,
}

/// A timing breakdown of one end-to-end analysis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Breakdown {
    /// Tool/configuration label.
    pub label: String,
    /// The phases, in execution order.
    pub phases: Vec<Phase>,
    /// Bytes moved over the host–SSD interface (external I/O).
    pub external_io: ByteSize,
    /// Bytes read from flash but consumed inside the SSD (ISP traffic).
    pub internal_io: ByteSize,
    /// Portion of the total during which the host CPU is busy.
    pub host_busy: SimDuration,
    /// Portion of the total during which the SSD (flash array or ISP logic)
    /// is busy.
    pub ssd_busy: SimDuration,
    /// Portion of the total during which an attached accelerator (PIM,
    /// sorting, or mapping accelerator) is busy.
    pub accelerator_busy: SimDuration,
}

impl Breakdown {
    /// Creates an empty breakdown with a label.
    pub fn new(label: impl Into<String>) -> Breakdown {
        Breakdown {
            label: label.into(),
            ..Breakdown::default()
        }
    }

    /// Appends a phase.
    pub fn push_phase(&mut self, name: impl Into<String>, duration: SimDuration) {
        self.phases.push(Phase {
            name: name.into(),
            duration,
        });
    }

    /// Total wall-clock time (sum of phases).
    pub fn total(&self) -> SimDuration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Duration of a phase by name, if present.
    pub fn phase(&self, name: &str) -> Option<SimDuration> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.duration)
    }

    /// Throughput in queries (reads) per second for a sample of `reads` reads.
    pub fn queries_per_sec(&self, reads: u64) -> f64 {
        let t = self.total().as_secs();
        if t == 0.0 {
            0.0
        } else {
            reads as f64 / t
        }
    }

    /// Speedup of this run relative to `baseline` (baseline time / this time).
    pub fn speedup_over(&self, baseline: &Breakdown) -> f64 {
        baseline.total() / self.total()
    }

    /// Formats the breakdown as a fixed-width report table row set.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.label));
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<38} {:>12}\n",
                p.name,
                format!("{}", p.duration)
            ));
        }
        out.push_str(&format!(
            "  {:<38} {:>12}\n",
            "TOTAL",
            format!("{}", self.total())
        ));
        out
    }
}

/// Geometric mean of a slice of positive values (used for the "GMean" columns
/// of the paper's figures).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    assert!(values.iter().all(|v| *v > 0.0), "values must be positive");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_breakdown() -> Breakdown {
        let mut b = Breakdown::new("test");
        b.push_phase("load", SimDuration::from_secs(10.0));
        b.push_phase("classify", SimDuration::from_secs(30.0));
        b
    }

    #[test]
    fn total_and_phase_lookup() {
        let b = sample_breakdown();
        assert_eq!(b.total().as_secs(), 40.0);
        assert_eq!(b.phase("load").unwrap().as_secs(), 10.0);
        assert!(b.phase("missing").is_none());
    }

    #[test]
    fn throughput_and_speedup() {
        let b = sample_breakdown();
        assert_eq!(b.queries_per_sec(4000), 100.0);
        let mut faster = Breakdown::new("faster");
        faster.push_phase("all", SimDuration::from_secs(8.0));
        assert_eq!(faster.speedup_over(&b), 5.0);
    }

    #[test]
    fn table_contains_phases_and_total() {
        let t = sample_breakdown().to_table();
        assert!(t.contains("classify"));
        assert!(t.contains("TOTAL"));
    }

    #[test]
    fn geometric_mean_of_known_values() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geometric_mean_rejects_empty() {
        geometric_mean(&[]);
    }
}
