//! Kraken2-style performance-optimized baseline (R-Qry / P-Opt).
//!
//! The performance-optimized baseline keeps a hash table that maps each
//! indexed k-mer to the LCA taxID of the genomes containing it, looks up every
//! query k-mer with random accesses, and classifies each read from the taxa
//! its k-mers hit (§2.1.1). The whole database must be brought from storage to
//! main memory before (or while) classifying, which is the I/O overhead the
//! paper's motivational analysis quantifies (§3.2).
//!
//! [`KrakenClassifier`] is the functional implementation (used for accuracy
//! experiments on synthetic data); [`KrakenTimingModel`] is the paper-scale
//! performance model.

use std::collections::HashMap;

use megis_genomics::kmer::Kmer;
use megis_genomics::profile::{AbundanceProfile, PresenceResult};
use megis_genomics::read::{Read, ReadSet};
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::taxonomy::{TaxId, Taxonomy};
use megis_host::system::SystemConfig;
use megis_ssd::timing::ByteSize;

use crate::timing::Breakdown;
use crate::workload::WorkloadSpec;

/// Classification output of the functional R-Qry tool.
#[derive(Debug, Clone, Default)]
pub struct KrakenOutput {
    /// Per-read taxon assignment (`None` = unclassified).
    pub assignments: Vec<Option<TaxId>>,
    /// Species reported present.
    pub presence: PresenceResult,
    /// Read-count based abundance estimate.
    pub abundance: AbundanceProfile,
}

/// Functional Kraken2-style classifier.
#[derive(Debug, Clone)]
pub struct KrakenClassifier {
    k: usize,
    /// k-mer → LCA taxon of all genomes containing it.
    table: HashMap<Kmer, TaxId>,
    taxonomy: Taxonomy,
    /// Minimum fraction of a sample's reads that must be assigned to a
    /// species for it to be reported present.
    presence_threshold: f64,
}

impl KrakenClassifier {
    /// Builds the hash-table database from a reference collection.
    pub fn build(references: &ReferenceCollection, k: usize) -> KrakenClassifier {
        let taxonomy = references.taxonomy().clone();
        let mut table: HashMap<Kmer, TaxId> = HashMap::new();
        for genome in references.genomes() {
            for kmer in megis_genomics::kmer::KmerExtractor::new(genome.sequence(), k) {
                let canon = kmer.canonical();
                table
                    .entry(canon)
                    .and_modify(|t| *t = taxonomy.lca(*t, genome.taxid()))
                    .or_insert(genome.taxid());
            }
        }
        KrakenClassifier {
            k,
            table,
            taxonomy,
            presence_threshold: 0.002,
        }
    }

    /// The k-mer length of the database.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers in the hash table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Approximate in-memory database size (hash-table entry per k-mer).
    pub fn database_bytes(&self) -> ByteSize {
        // 8-byte compacted k-mer key + 4-byte taxID + load-factor overhead.
        ByteSize::from_bytes(self.table.len() as u64 * 16)
    }

    /// Sets the presence-report threshold (fraction of classified reads).
    pub fn set_presence_threshold(&mut self, threshold: f64) {
        self.presence_threshold = threshold.clamp(0.0, 1.0);
    }

    /// Classifies a single read: every k-mer is looked up and the read is
    /// assigned to the taxon whose lineage accumulates the most hits.
    pub fn classify_read(&self, read: &Read) -> Option<TaxId> {
        let mut hits: HashMap<TaxId, u32> = HashMap::new();
        let mut total = 0u32;
        for kmer in read.kmers(self.k) {
            if let Some(tax) = self.table.get(&kmer.canonical()) {
                *hits.entry(*tax).or_insert(0) += 1;
                total += 1;
            }
        }
        if total == 0 {
            return None;
        }
        // Score each candidate by the hits on its root-to-node path
        // (Kraken-style lineage scoring), then take the deepest best-scoring
        // node.
        let mut best: Option<(TaxId, u32, usize)> = None;
        for &cand in hits.keys() {
            let lineage = self.taxonomy.lineage(cand);
            let score: u32 = hits
                .iter()
                .filter(|(t, _)| lineage.contains(t) || self.taxonomy.lineage(**t).contains(&cand))
                .map(|(_, c)| *c)
                .sum();
            let depth = lineage.len();
            let better = match best {
                None => true,
                Some((_, s, d)) => score > s || (score == s && depth > d),
            };
            if better {
                best = Some((cand, score, depth));
            }
        }
        best.map(|(t, _, _)| t)
    }

    /// Classifies a whole sample.
    pub fn classify(&self, reads: &ReadSet) -> KrakenOutput {
        let assignments: Vec<Option<TaxId>> = reads.iter().map(|r| self.classify_read(r)).collect();
        let mut counts: HashMap<TaxId, u64> = HashMap::new();
        for a in assignments.iter().flatten() {
            *counts.entry(*a).or_insert(0) += 1;
        }
        let classified: u64 = counts.values().sum();
        let min_reads = ((classified as f64) * self.presence_threshold).ceil() as u64;
        let presence = PresenceResult::from_taxa(
            counts
                .iter()
                .filter(|(_, c)| **c >= min_reads.max(1))
                .map(|(t, _)| *t),
        );
        let abundance = AbundanceProfile::from_counts(counts);
        KrakenOutput {
            assignments,
            presence,
            abundance,
        }
    }

    /// The taxonomy the classifier resolves LCAs against.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }
}

/// Paper-scale performance model of the R-Qry baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct KrakenTimingModel;

impl KrakenTimingModel {
    /// Timing breakdown of presence/absence identification.
    ///
    /// The database is loaded from the SSD(s) into host DRAM (sequentially —
    /// the faster of the two access strategies the paper measured), then every
    /// query k-mer is looked up in the in-memory hash table. When the database
    /// does not fit in host DRAM, it is processed in chunks (the optimization
    /// of §6.1 "Effect of Main Memory Capacity"): the load I/O is unchanged
    /// but the query set is re-classified against every chunk.
    pub fn presence_breakdown(&self, system: &SystemConfig, workload: &WorkloadSpec) -> Breakdown {
        let mut b = Breakdown::new(format!("P-Opt ({})", workload.label));
        let db = workload.kraken_db;
        let load_time = db.time_at(system.aggregate_external_read_bandwidth());
        let chunks = system.memory.chunks_needed(db);
        // Larger databases mean a larger hash table (worse locality) and more
        // query k-mers finding hits that must be resolved, so the per-query
        // classification cost grows with database size (normalized to the
        // default 293 GB database).
        let db_scale_factor = 0.4 + 0.6 * (db.as_gb() / 293.0);
        let classify_once =
            system.cpu.hash_classify_time(workload.kraken_query_kmers()) * db_scale_factor;
        let classify = classify_once * chunks as f64;
        b.push_phase("database load (I/O)", load_time);
        b.push_phase("k-mer lookup + classification", classify);
        b.external_io = db;
        b.internal_io = db;
        b.host_busy = classify;
        b.ssd_busy = load_time;
        b
    }

    /// Timing breakdown of the full pipeline including Bracken-style
    /// abundance re-estimation (a cheap statistical pass over the per-read
    /// assignments).
    pub fn abundance_breakdown(&self, system: &SystemConfig, workload: &WorkloadSpec) -> Breakdown {
        let mut b = self.presence_breakdown(system, workload);
        b.label = format!("P-Opt+Bracken ({})", workload.label);
        // Bracken redistributes per-read assignments: one linear pass.
        let bracken = system.cpu.stream_merge_time(workload.reads);
        b.push_phase("abundance re-estimation (Bracken)", bracken);
        b.host_busy += bracken;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::sample::{CommunityConfig, Diversity};
    use megis_ssd::config::SsdConfig;

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_species(4)
            .with_reads(300)
            .with_database_species(16)
            .build(77)
    }

    #[test]
    fn classifier_finds_true_species() {
        let c = community();
        let clf = KrakenClassifier::build(c.references(), 21);
        assert!(!clf.is_empty());
        let out = clf.classify(c.sample().reads());
        let truth = c.truth_presence();
        // Every true species should be recovered (the database contains all
        // their genomes and reads have a low error rate).
        for t in truth.taxa() {
            assert!(out.presence.contains(*t), "missing true species {t}");
        }
    }

    #[test]
    fn most_reads_are_classified_correctly() {
        let c = community();
        let clf = KrakenClassifier::build(c.references(), 21);
        let out = clf.classify(c.sample().reads());
        let mut correct = 0;
        let mut assigned = 0;
        for (read, assignment) in c.sample().reads().iter().zip(&out.assignments) {
            if let Some(t) = assignment {
                assigned += 1;
                // Correct if the assignment equals the truth or an ancestor of
                // it (genus-level assignment is still "not wrong").
                let truth = read.truth().unwrap();
                if *t == truth || clf.taxonomy().lineage(truth).contains(t) {
                    correct += 1;
                }
            }
        }
        assert!(assigned > 250, "most reads should be classified");
        assert!(
            correct as f64 / assigned as f64 > 0.9,
            "classification accuracy too low: {correct}/{assigned}"
        );
    }

    #[test]
    fn unclassifiable_read_returns_none() {
        let c = community();
        let clf = KrakenClassifier::build(c.references(), 21);
        // A read from a completely different random collection.
        let foreign = ReferenceCollection::synthetic(1, 300, 424_242);
        let read = Read::new(
            "foreign",
            foreign.genomes()[0].sequence().subsequence(0, 100),
        );
        // It may share a stray k-mer, but typically returns None.
        let _ = clf.classify_read(&read); // must not panic
    }

    #[test]
    fn database_size_reflects_entries() {
        let c = community();
        let clf = KrakenClassifier::build(c.references(), 21);
        assert_eq!(clf.database_bytes().as_bytes(), clf.len() as u64 * 16);
    }

    #[test]
    fn timing_io_dominates_on_sata() {
        let model = KrakenTimingModel;
        let system = SystemConfig::reference(SsdConfig::ssd_c());
        let w = WorkloadSpec::cami(Diversity::Low);
        let b = model.presence_breakdown(&system, &w);
        let load = b.phase("database load (I/O)").unwrap();
        let classify = b.phase("k-mer lookup + classification").unwrap();
        assert!(load.as_secs() > 500.0 && load.as_secs() < 560.0);
        assert!(load > classify, "I/O should dominate on SSD-C");
    }

    #[test]
    fn timing_small_dram_multiplies_classification() {
        let model = KrakenTimingModel;
        let w = WorkloadSpec::cami(Diversity::Medium);
        let big = SystemConfig::reference(SsdConfig::ssd_c());
        let small =
            SystemConfig::reference(SsdConfig::ssd_c()).with_dram_capacity(ByteSize::from_gb(64.0));
        let b_big = model.presence_breakdown(&big, &w);
        let b_small = model.presence_breakdown(&small, &w);
        assert!(b_small.total() > b_big.total() * 2.0);
        assert_eq!(
            b_small.phase("database load (I/O)"),
            b_big.phase("database load (I/O)"),
            "load I/O is unchanged; only classification repeats"
        );
    }

    #[test]
    fn abundance_adds_a_cheap_phase() {
        let model = KrakenTimingModel;
        let system = SystemConfig::reference(SsdConfig::ssd_p());
        let w = WorkloadSpec::cami(Diversity::Low);
        let p = model.presence_breakdown(&system, &w);
        let a = model.abundance_breakdown(&system, &w);
        assert!(a.total() > p.total());
        assert!((a.total() - p.total()).as_secs() < 0.05 * p.total().as_secs());
    }
}
