//! Paper-scale workload descriptions.
//!
//! A [`WorkloadSpec`] captures everything the timed models need to know about
//! one evaluation workload: the query sample (CAMI-L/M/H, 100 M reads each),
//! the database sizes each tool uses (§5: 293 GB for Kraken2, 701 GB k-mer
//! database + 6.9 GB sketch tree for Metalign, 14 GB KSS tables for MegIS),
//! and the derived k-mer set sizes of §4.2.

use megis_genomics::sample::{Diversity, PaperScale};
use megis_ssd::timing::ByteSize;

/// Description of one paper-scale workload (sample + databases).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Human-readable label (e.g. "CAMI-M").
    pub label: String,
    /// Diversity preset the sample was drawn from.
    pub diversity: Diversity,
    /// Number of reads in the sample.
    pub reads: u64,
    /// Read length in bases.
    pub read_len: u64,
    /// k-mer size used by the R-Qry (Kraken2-style) tool.
    pub kraken_k: u64,
    /// k-mer size used by the S-Qry (Metalign-style) tool and MegIS.
    pub metalign_k: u64,
    /// R-Qry hash-table database size (293 GB at 1× scale).
    pub kraken_db: ByteSize,
    /// S-Qry sorted k-mer database size (701 GB at 1× scale).
    pub metalign_db: ByteSize,
    /// CMash-style ternary sketch tree size (6.9 GB at 1× scale).
    pub sketch_tree: ByteSize,
    /// MegIS K-mer Sketch Streaming table size (14 GB at 1× scale).
    pub kss_tables: ByteSize,
    /// Per-species reference index volume that Step 3 merges for the
    /// candidate species of this sample.
    pub candidate_reference_indexes: ByteSize,
    /// Bytes of k-mers extracted from the sample before exclusion (~60 GB).
    pub extracted_kmer_bytes: ByteSize,
    /// Bytes of k-mers that proceed to intersection after exclusion (~6.5 GB).
    pub selected_kmer_bytes: ByteSize,
    /// Number of k-mers extracted before exclusion.
    pub extracted_kmers: u64,
    /// Number of k-mers sent to intersection after exclusion.
    pub selected_kmers: u64,
    /// Number of query k-mers that intersect the database (drives taxID
    /// retrieval work; grows with sample diversity).
    pub intersecting_kmers: u64,
    /// Number of candidate species identified as present.
    pub candidate_species: u64,
}

impl WorkloadSpec {
    /// The paper's CAMI workload of the given diversity at 1× database scale.
    pub fn cami(diversity: Diversity) -> WorkloadSpec {
        let scale = PaperScale::for_diversity(diversity);
        let metalign_k = 60;
        let kmer_bytes = 2 * metalign_k / 8_u64; // 15 bytes per 60-mer
        let extracted_kmers = scale.extracted_kmer_bytes / kmer_bytes;
        let selected_kmers = scale.selected_kmer_bytes / kmer_bytes;
        // The fraction of selected k-mers that hit the database grows with
        // diversity (more distinct organisms → more genuine matches).
        let hit_fraction = match diversity {
            Diversity::Low => 0.55,
            Diversity::Medium => 0.65,
            Diversity::High => 0.75,
        };
        let species_in_db = 52_961.0;
        let candidate_species = (species_in_db * diversity.species_fraction()) as u64;
        WorkloadSpec {
            label: diversity.label().to_string(),
            diversity,
            reads: scale.reads,
            read_len: scale.read_len,
            kraken_k: 35,
            metalign_k,
            kraken_db: ByteSize::from_gb(293.0),
            metalign_db: ByteSize::from_gb(701.0),
            sketch_tree: ByteSize::from_gb(6.9),
            kss_tables: ByteSize::from_gb(14.0),
            candidate_reference_indexes: ByteSize::from_gb(
                candidate_species as f64 * 0.004, // ≈4 MB of index per species
            ),
            extracted_kmer_bytes: ByteSize::from_bytes(scale.extracted_kmer_bytes),
            selected_kmer_bytes: ByteSize::from_bytes(scale.selected_kmer_bytes),
            extracted_kmers,
            selected_kmers,
            intersecting_kmers: (selected_kmers as f64 * hit_fraction) as u64,
            candidate_species,
        }
    }

    /// All three CAMI workloads.
    pub fn all_cami() -> Vec<WorkloadSpec> {
        Diversity::ALL
            .iter()
            .map(|d| WorkloadSpec::cami(*d))
            .collect()
    }

    /// Returns a copy with all database-side sizes scaled by `factor`
    /// (the 1×/2×/3× database-size sweep of Fig. 14; the paper's headline
    /// configuration corresponds to 3× of its 1× starting point, i.e. this
    /// method is called on a spec whose sizes were divided accordingly).
    pub fn with_database_scale(&self, factor: f64) -> WorkloadSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut w = self.clone();
        w.label = format!("{} (db×{factor:.1})", self.label);
        w.kraken_db = ByteSize::from_gb(self.kraken_db.as_gb() * factor);
        w.metalign_db = ByteSize::from_gb(self.metalign_db.as_gb() * factor);
        w.sketch_tree = ByteSize::from_gb(self.sketch_tree.as_gb() * factor);
        w.kss_tables = ByteSize::from_gb(self.kss_tables.as_gb() * factor);
        w.candidate_reference_indexes =
            ByteSize::from_gb(self.candidate_reference_indexes.as_gb() * factor);
        // A larger database also yields more intersecting k-mers and more
        // candidate species (sub-linearly).
        w.intersecting_kmers = (self.intersecting_kmers as f64 * factor.sqrt()) as u64;
        w.candidate_species = (self.candidate_species as f64 * factor.sqrt()) as u64;
        w
    }

    /// Number of k-mer lookups the R-Qry classifier performs for this sample
    /// (one per read position at its k).
    pub fn kraken_query_kmers(&self) -> u64 {
        self.reads * (self.read_len - self.kraken_k + 1)
    }

    /// Total bases in the query sample.
    pub fn total_bases(&self) -> u64 {
        self.reads * self.read_len
    }

    /// Bytes of the intersecting k-mer set (2-bit encoded k_max-mers).
    pub fn intersecting_kmer_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.intersecting_kmers * (2 * self.metalign_k / 8))
    }

    /// Bytes of taxID results sent back to the host at the end of Step 2.
    pub fn taxid_result_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.intersecting_kmers * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cami_specs_match_paper_sizes() {
        let w = WorkloadSpec::cami(Diversity::Medium);
        assert_eq!(w.reads, 100_000_000);
        assert_eq!(w.kraken_db.as_gb(), 293.0);
        assert_eq!(w.metalign_db.as_gb(), 701.0);
        assert!((w.sketch_tree.as_gb() - 6.9).abs() < 1e-9);
        assert_eq!(w.kss_tables.as_gb(), 14.0);
        assert_eq!(w.extracted_kmer_bytes.as_gb(), 60.0);
        assert!((w.selected_kmer_bytes.as_gb() - 6.5).abs() < 1e-9);
    }

    #[test]
    fn diversity_increases_retrieval_work() {
        let low = WorkloadSpec::cami(Diversity::Low);
        let high = WorkloadSpec::cami(Diversity::High);
        assert!(high.intersecting_kmers > low.intersecting_kmers);
        assert!(high.candidate_species > low.candidate_species);
    }

    #[test]
    fn database_scaling_scales_sizes() {
        let w = WorkloadSpec::cami(Diversity::Medium);
        let w2 = w.with_database_scale(2.0);
        assert_eq!(w2.kraken_db.as_gb(), 586.0);
        assert_eq!(w2.metalign_db.as_gb(), 1402.0);
        assert!(w2.intersecting_kmers > w.intersecting_kmers);
    }

    #[test]
    fn derived_quantities() {
        let w = WorkloadSpec::cami(Diversity::Low);
        assert_eq!(w.kraken_query_kmers(), 100_000_000 * (150 - 35 + 1));
        assert_eq!(w.total_bases(), 15_000_000_000);
        assert!(w.intersecting_kmer_bytes() < w.selected_kmer_bytes);
        assert!(w.taxid_result_bytes().as_gb() < 2.0);
    }

    #[test]
    fn all_cami_has_three_workloads() {
        assert_eq!(WorkloadSpec::all_cami().len(), 3);
    }
}
