//! CMash-style ternary search tree over variable-sized sketch k-mers.
//!
//! The accuracy-optimized baseline retrieves taxIDs by traversing a ternary
//! search tree that encodes variable-sized k-mers space-efficiently
//! (Fig. 7(b)): looking up a k_max-mer also visits the nodes of all of its
//! prefixes, so one traversal retrieves matches at every k. The price is up
//! to k_max pointer-chasing operations per lookup on a structure that may not
//! fit in an SSD's internal DRAM — the reason MegIS replaces it with K-mer
//! Sketch Streaming inside the SSD (§4.3.2).

use std::cell::Cell;

use megis_genomics::dna::Base;
use megis_genomics::kmer::Kmer;
use megis_genomics::sketch::SketchDatabase;
use megis_genomics::taxonomy::TaxId;

/// Size of one tree node in bytes for the size model: a split character,
/// three child pointers, and an optional taxID-list pointer.
const NODE_BYTES: u64 = 1 + 3 * 8 + 8;

#[derive(Debug, Clone, Default)]
struct Node {
    /// The base this node splits on.
    split: Option<Base>,
    /// Children: lower / equal / higher.
    lo: Option<usize>,
    eq: Option<usize>,
    hi: Option<usize>,
    /// Taxa recorded at the end of a sketch k-mer of some size.
    taxa: Vec<TaxId>,
}

/// A ternary search tree of sketch k-mers (the baseline taxID-retrieval
/// structure).
#[derive(Debug, Clone, Default)]
pub struct TernarySketchTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    kmers: usize,
    associations: usize,
    pointer_chases: Cell<u64>,
}

impl TernarySketchTree {
    /// Builds the tree from the logical sketch content.
    pub fn build(sketches: &SketchDatabase) -> TernarySketchTree {
        let mut tree = TernarySketchTree::default();
        for k in sketches.k_sizes() {
            if let Some(table) = sketches.table(k) {
                for (kmer, taxa) in table {
                    tree.insert(*kmer, taxa);
                }
            }
        }
        tree
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of sketch k-mers inserted.
    pub fn kmer_count(&self) -> usize {
        self.kmers
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.kmers == 0
    }

    /// Estimated in-memory size of the tree (Fig. 7 size comparison): node
    /// storage plus 4 bytes per taxID association.
    pub fn size_bytes(&self) -> u64 {
        self.nodes.len() as u64 * NODE_BYTES + self.associations as u64 * 4
    }

    /// Total pointer-chasing operations performed by lookups so far (a proxy
    /// for the irregular memory traffic that makes this structure a poor fit
    /// for in-storage processing).
    pub fn pointer_chases(&self) -> u64 {
        self.pointer_chases.get()
    }

    fn insert(&mut self, kmer: Kmer, taxa: &[TaxId]) {
        let bases: Vec<Base> = (0..kmer.k()).map(|i| kmer.base(i)).collect();
        let mut node = self.ensure_root(bases[0]);
        let mut depth = 0;
        loop {
            let split = self.nodes[node].split.expect("interior nodes have splits");
            match bases[depth].cmp(&split) {
                std::cmp::Ordering::Less => {
                    node = self.child_or_new(node, ChildKind::Lo, bases[depth]);
                }
                std::cmp::Ordering::Greater => {
                    node = self.child_or_new(node, ChildKind::Hi, bases[depth]);
                }
                std::cmp::Ordering::Equal => {
                    depth += 1;
                    if depth == bases.len() {
                        for t in taxa {
                            if !self.nodes[node].taxa.contains(t) {
                                self.nodes[node].taxa.push(*t);
                                self.associations += 1;
                            }
                        }
                        self.kmers += 1;
                        return;
                    }
                    node = self.child_or_new(node, ChildKind::Eq, bases[depth]);
                }
            }
        }
    }

    fn ensure_root(&mut self, split: Base) -> usize {
        match self.root {
            Some(r) => r,
            None => {
                let idx = self.new_node(split);
                self.root = Some(idx);
                idx
            }
        }
    }

    fn new_node(&mut self, split: Base) -> usize {
        self.nodes.push(Node {
            split: Some(split),
            ..Node::default()
        });
        self.nodes.len() - 1
    }

    fn child_or_new(&mut self, node: usize, kind: ChildKind, split: Base) -> usize {
        let existing = match kind {
            ChildKind::Lo => self.nodes[node].lo,
            ChildKind::Eq => self.nodes[node].eq,
            ChildKind::Hi => self.nodes[node].hi,
        };
        match existing {
            Some(c) => c,
            None => {
                let idx = self.new_node(split);
                match kind {
                    ChildKind::Lo => self.nodes[node].lo = Some(idx),
                    ChildKind::Eq => self.nodes[node].eq = Some(idx),
                    ChildKind::Hi => self.nodes[node].hi = Some(idx),
                }
                idx
            }
        }
    }

    /// Looks up a query k-mer, returning the union of taxa recorded on the
    /// query itself and on every prefix of it that is a sketch k-mer.
    /// One traversal serves all k sizes, at the cost of pointer chasing.
    pub fn lookup_with_prefixes(&self, query: Kmer) -> Vec<TaxId> {
        let mut taxa = Vec::new();
        let Some(mut node) = self.root else {
            return taxa;
        };
        let bases: Vec<Base> = (0..query.k()).map(|i| query.base(i)).collect();
        let mut depth = 0;
        loop {
            self.pointer_chases.set(self.pointer_chases.get() + 1);
            let n = &self.nodes[node];
            let split = n.split.expect("interior nodes have splits");
            match bases[depth].cmp(&split) {
                std::cmp::Ordering::Less => match n.lo {
                    Some(c) => node = c,
                    None => break,
                },
                std::cmp::Ordering::Greater => match n.hi {
                    Some(c) => node = c,
                    None => break,
                },
                std::cmp::Ordering::Equal => {
                    // Reaching the end of a stored k-mer (any k) collects taxa.
                    taxa.extend_from_slice(&n.taxa);
                    depth += 1;
                    if depth == bases.len() {
                        break;
                    }
                    match n.eq {
                        Some(c) => node = c,
                        None => break,
                    }
                }
            }
        }
        taxa.sort();
        taxa.dedup();
        taxa
    }
}

#[derive(Debug, Clone, Copy)]
enum ChildKind {
    Lo,
    Eq,
    Hi,
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::reference::ReferenceCollection;
    use megis_genomics::sketch::SketchConfig;

    fn sketches() -> SketchDatabase {
        let refs = ReferenceCollection::synthetic(6, 600, 11);
        SketchDatabase::build(&refs, SketchConfig::small())
    }

    #[test]
    fn tree_contains_all_sketch_kmers() {
        let db = sketches();
        let tree = TernarySketchTree::build(&db);
        assert_eq!(tree.kmer_count(), db.total_kmers());
        assert!(!tree.is_empty());
    }

    #[test]
    fn lookup_matches_flat_table_lookup() {
        let db = sketches();
        let tree = TernarySketchTree::build(&db);
        let kmax = db.k_max().unwrap();
        for (kmer, _) in db.table(kmax).unwrap().iter().take(50) {
            assert_eq!(
                tree.lookup_with_prefixes(*kmer),
                db.lookup_with_prefixes(*kmer),
                "tree and flat lookups disagree for {kmer}"
            );
        }
    }

    #[test]
    fn missing_kmer_returns_empty_or_prefix_matches_only() {
        let db = sketches();
        let tree = TernarySketchTree::build(&db);
        let query = Kmer::from_ascii(&vec![b'A'; db.k_max().unwrap()]).unwrap();
        assert_eq!(
            tree.lookup_with_prefixes(query),
            db.lookup_with_prefixes(query)
        );
    }

    #[test]
    fn lookups_accumulate_pointer_chases() {
        let db = sketches();
        let tree = TernarySketchTree::build(&db);
        let kmax = db.k_max().unwrap();
        let before = tree.pointer_chases();
        for (kmer, _) in db.table(kmax).unwrap().iter().take(10) {
            tree.lookup_with_prefixes(*kmer);
        }
        let chased = tree.pointer_chases() - before;
        assert!(
            chased as usize >= 10 * kmax,
            "each lookup chases ≥ k pointers"
        );
    }

    #[test]
    fn tree_shares_prefixes_between_kmers() {
        // Prefix sharing is what makes the ternary tree compact at paper
        // scale (Fig. 7): the node count must be well below the worst case of
        // k nodes per inserted k-mer.
        let db = sketches();
        let tree = TernarySketchTree::build(&db);
        let worst_case: usize = db
            .k_sizes()
            .iter()
            .map(|k| k * db.table(*k).unwrap().len())
            .sum();
        assert!(tree.node_count() < worst_case);
        assert!(tree.size_bytes() > 0);
    }

    #[test]
    fn empty_tree_lookup() {
        let tree = TernarySketchTree::default();
        let q = Kmer::from_ascii(b"ACGTACGTACGTACGTACGTA").unwrap();
        assert!(tree.lookup_with_prefixes(q).is_empty());
        assert_eq!(tree.size_bytes(), 0);
    }
}
