//! Bracken-style species-level abundance re-estimation.
//!
//! Kraken-style classification assigns some reads to internal taxonomy nodes
//! (e.g. a genus) when their k-mers are shared between sibling species.
//! Bracken redistributes those higher-rank assignments down to species,
//! proportionally to the species-level read counts already observed within
//! each clade, producing the species-level abundance profile used by the
//! P-Opt baseline's abundance-estimation pipeline (§5).

use std::collections::HashMap;

use megis_genomics::profile::AbundanceProfile;
use megis_genomics::taxonomy::{Rank, TaxId, Taxonomy};

/// Redistributes per-read taxon assignments to species-level counts.
///
/// Reads assigned directly to species keep their assignment. Reads assigned
/// to an internal node are split across that node's descendant species in
/// proportion to the species' direct counts (or evenly when no descendant has
/// direct counts). Unclassified reads (`None`) are dropped.
pub fn redistribute(assignments: &[Option<TaxId>], taxonomy: &Taxonomy) -> AbundanceProfile {
    let mut species_counts: HashMap<TaxId, f64> = HashMap::new();
    let mut internal_counts: HashMap<TaxId, u64> = HashMap::new();

    for assignment in assignments.iter().flatten() {
        if taxonomy.rank(*assignment) == Some(Rank::Species) {
            *species_counts.entry(*assignment).or_insert(0.0) += 1.0;
        } else {
            *internal_counts.entry(*assignment).or_insert(0) += 1;
        }
    }

    // Redistribute internal-node counts to their descendant species.
    let all_species = taxonomy.ids_at_rank(Rank::Species);
    for (node, count) in internal_counts {
        let descendants: Vec<TaxId> = all_species
            .iter()
            .copied()
            .filter(|s| taxonomy.lineage(*s).contains(&node))
            .collect();
        if descendants.is_empty() {
            continue;
        }
        let direct_total: f64 = descendants
            .iter()
            .map(|s| species_counts.get(s).copied().unwrap_or(0.0))
            .sum();
        for s in &descendants {
            let share = if direct_total > 0.0 {
                species_counts.get(s).copied().unwrap_or(0.0) / direct_total
            } else {
                1.0 / descendants.len() as f64
            };
            *species_counts.entry(*s).or_insert(0.0) += count as f64 * share;
        }
    }

    AbundanceProfile::from_fractions(species_counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taxonomy() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.add_node(TaxId(1), TaxId::ROOT, Rank::Domain, "D");
        t.add_node(TaxId(10), TaxId(1), Rank::Genus, "G1");
        t.add_node(TaxId(11), TaxId(10), Rank::Species, "S11");
        t.add_node(TaxId(12), TaxId(10), Rank::Species, "S12");
        t.add_node(TaxId(20), TaxId(1), Rank::Genus, "G2");
        t.add_node(TaxId(21), TaxId(20), Rank::Species, "S21");
        t
    }

    #[test]
    fn species_assignments_pass_through() {
        let t = taxonomy();
        let assignments = vec![Some(TaxId(11)), Some(TaxId(11)), Some(TaxId(21)), None];
        let profile = redistribute(&assignments, &t);
        assert!((profile.abundance(TaxId(11)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((profile.abundance(TaxId(21)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn genus_reads_follow_species_proportions() {
        let t = taxonomy();
        // 3 reads at S11, 1 read at S12, 4 reads at genus G1.
        let mut assignments = vec![Some(TaxId(11)); 3];
        assignments.push(Some(TaxId(12)));
        assignments.extend(vec![Some(TaxId(10)); 4]);
        let profile = redistribute(&assignments, &t);
        // S11 gets 3 + 4*(3/4) = 6, S12 gets 1 + 4*(1/4) = 2 → 0.75 / 0.25.
        assert!((profile.abundance(TaxId(11)) - 0.75).abs() < 1e-12);
        assert!((profile.abundance(TaxId(12)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn genus_reads_split_evenly_without_direct_counts() {
        let t = taxonomy();
        let assignments = vec![Some(TaxId(10)); 4];
        let profile = redistribute(&assignments, &t);
        assert!((profile.abundance(TaxId(11)) - 0.5).abs() < 1e-12);
        assert!((profile.abundance(TaxId(12)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unclassified_reads_are_ignored() {
        let t = taxonomy();
        let profile = redistribute(&[None, None, Some(TaxId(11))], &t);
        assert_eq!(profile.len(), 1);
        assert!((profile.abundance(TaxId(11)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_empty_profile() {
        let t = taxonomy();
        assert!(redistribute(&[], &t).is_empty());
    }
}
