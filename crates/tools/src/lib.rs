//! Baseline metagenomic analysis tools for the MegIS reproduction.
//!
//! The paper compares MegIS against three baselines (§5):
//!
//! * **P-Opt** — the performance-optimized, random-access (R-Qry) flow:
//!   a Kraken2-style hash-table classifier plus Bracken-style abundance
//!   re-estimation ([`kraken`], [`bracken`]),
//! * **A-Opt** — the accuracy-optimized, streaming (S-Qry) flow: Metalign-style
//!   analysis built from KMC-style k-mer counting, sorted-database
//!   intersection, CMash-style ternary-search-tree sketch lookups, and
//!   mapping-based abundance ([`metalign`], [`kmc`], [`ternary`]),
//! * **PIM** — the Sieve-accelerated Kraken2 pipeline, which removes the
//!   k-mer-matching compute bottleneck but still pays the database-load I/O
//!   ([`pim`]).
//!
//! Each baseline has both a *functional* implementation (runs on real
//! in-memory synthetic data; used for accuracy and correctness) and a *timed*
//! model (paper-scale workloads on a [`workload::WorkloadSpec`]; used by the
//! figure harness). The shared workload description and timing-breakdown
//! types live in [`workload`] and [`timing`].

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
pub mod bracken;
pub mod kmc;
pub mod kraken;
pub mod metalign;
pub mod pim;
pub mod ternary;
pub mod timing;
pub mod workload;

pub use kraken::{KrakenClassifier, KrakenTimingModel};
pub use metalign::{MetalignClassifier, MetalignTimingModel, TaxIdRetrieval};
pub use pim::PimAcceleratedKraken;
pub use ternary::TernarySketchTree;
pub use timing::Breakdown;
pub use workload::WorkloadSpec;
