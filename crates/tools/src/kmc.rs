//! KMC-style k-mer counting, sorting, and frequency-based exclusion.
//!
//! The S-Qry baseline (Metalign) prepares its queries with KMC: extract all
//! k-mers from the sample, sort them, count duplicates, and optionally exclude
//! overly common and extremely rare k-mers (§2.1.1, §4.2.3). MegIS's Step 1
//! reuses the same logic on the host (with bucketing added on top, which lives
//! in the `megis` core crate).

use megis_genomics::kmer::Kmer;
use megis_genomics::read::ReadSet;

/// Frequency-based exclusion thresholds (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExclusionPolicy {
    /// Exclude k-mers occurring fewer than this many times (sequencing-error
    /// suppression). `1` keeps everything.
    pub min_count: u32,
    /// Exclude k-mers occurring more than this many times (indiscriminative
    /// k-mers). `None` keeps everything.
    pub max_count: Option<u32>,
}

impl Default for ExclusionPolicy {
    fn default() -> Self {
        ExclusionPolicy {
            min_count: 1,
            max_count: None,
        }
    }
}

impl ExclusionPolicy {
    /// Returns `true` if a k-mer with `count` occurrences should be kept.
    pub fn keeps(&self, count: u32) -> bool {
        count >= self.min_count && self.max_count.is_none_or(|max| count <= max)
    }
}

/// The outcome of counting: sorted distinct k-mers with their multiplicities.
#[derive(Debug, Clone, Default)]
pub struct KmerCounts {
    counts: Vec<(Kmer, u32)>,
}

impl KmerCounts {
    /// Counts the canonical k-mers of every read in `reads`.
    ///
    /// Counting is flat, like KMC itself: collect every occurrence into one
    /// dense array, `sort_unstable` it, and run-length group equal runs into
    /// `(kmer, count)` pairs — no per-k-mer map nodes on the hot path. The
    /// result is identical to inserting each occurrence into an ordered map
    /// (sorted distinct k-mers with their multiplicities).
    pub fn count(reads: &ReadSet, k: usize) -> KmerCounts {
        let mut occurrences: Vec<Kmer> = Vec::new();
        for read in reads.iter() {
            for kmer in read.kmers(k) {
                occurrences.push(kmer.canonical());
            }
        }
        occurrences.sort_unstable();
        let mut counts: Vec<(Kmer, u32)> = Vec::new();
        for kmer in occurrences {
            match counts.last_mut() {
                Some((last, count)) if *last == kmer => *count += 1,
                _ => counts.push((kmer, 1)),
            }
        }
        KmerCounts { counts }
    }

    /// Number of distinct k-mers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if no k-mers were counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The sorted `(kmer, count)` pairs.
    pub fn entries(&self) -> &[(Kmer, u32)] {
        &self.counts
    }

    /// Total k-mer occurrences (sum of counts).
    pub fn total_occurrences(&self) -> u64 {
        self.counts.iter().map(|(_, c)| *c as u64).sum()
    }

    /// Applies an exclusion policy, returning the sorted distinct k-mers that
    /// survive.
    pub fn apply_exclusion(&self, policy: ExclusionPolicy) -> Vec<Kmer> {
        self.counts
            .iter()
            .filter(|(_, c)| policy.keeps(*c))
            .map(|(k, _)| *k)
            .collect()
    }

    /// All sorted distinct k-mers (no exclusion).
    pub fn distinct_kmers(&self) -> Vec<Kmer> {
        self.counts.iter().map(|(k, _)| *k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::dna::PackedSequence;
    use megis_genomics::read::Read;

    fn reads() -> ReadSet {
        ReadSet::from_reads(vec![
            Read::new("a", PackedSequence::from_ascii(b"ACGTACGTAC").unwrap()),
            Read::new("b", PackedSequence::from_ascii(b"ACGTACGTAC").unwrap()),
            Read::new("c", PackedSequence::from_ascii(b"ACGGCTAAGT").unwrap()),
        ])
    }

    #[test]
    fn counts_are_sorted_and_complete() {
        let counts = KmerCounts::count(&reads(), 5);
        assert!(!counts.is_empty());
        assert!(counts.entries().windows(2).all(|w| w[0].0 < w[1].0));
        // 3 reads × 6 k-mers each.
        assert_eq!(counts.total_occurrences(), 18);
    }

    #[test]
    fn duplicate_reads_double_counts() {
        let counts = KmerCounts::count(&reads(), 5);
        // k-mers from the duplicated read appear at least twice.
        let dup = counts.entries().iter().filter(|(_, c)| *c >= 2).count();
        assert!(dup > 0);
    }

    #[test]
    fn exclusion_policy_filters_both_ends() {
        let counts = KmerCounts::count(&reads(), 5);
        let all = counts.distinct_kmers().len();
        let no_rare = counts
            .apply_exclusion(ExclusionPolicy {
                min_count: 2,
                max_count: None,
            })
            .len();
        let no_common = counts
            .apply_exclusion(ExclusionPolicy {
                min_count: 1,
                max_count: Some(2),
            })
            .len();
        assert!(no_rare < all);
        assert!(no_common <= all);
        assert!(no_rare > 0);
    }

    #[test]
    fn default_policy_keeps_everything() {
        let counts = KmerCounts::count(&reads(), 5);
        assert_eq!(
            counts.apply_exclusion(ExclusionPolicy::default()).len(),
            counts.len()
        );
    }

    #[test]
    fn keeps_logic() {
        let p = ExclusionPolicy {
            min_count: 2,
            max_count: Some(10),
        };
        assert!(!p.keeps(1));
        assert!(p.keeps(2));
        assert!(p.keeps(10));
        assert!(!p.keeps(11));
    }
}
