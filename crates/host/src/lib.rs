//! Host-system and accelerator substrate models for the MegIS reproduction.
//!
//! The MegIS paper measures its software steps and baselines on a real
//! high-end server (AMD EPYC 7742, 128 cores, 1 TB DDR4) and feeds those
//! measurements into its simulator. This crate provides the equivalent
//! calibrated models:
//!
//! * [`cpu`] — host CPU throughput for the metagenomics kernels that run on
//!   the host (k-mer extraction, sorting, hash-table classification,
//!   sketch-tree lookups, streaming merges) plus host power,
//! * [`memory`] — host DRAM capacity/bandwidth/power and the page-swap
//!   penalty model used when the working set exceeds DRAM,
//! * [`accelerators`] — throughput models for the hardware baselines the
//!   paper integrates: a Sieve-style processing-in-memory k-mer matcher, a
//!   TopSort-style sorting accelerator, and a GenCache-style read mapper,
//! * [`system`] — full-system configurations (host + one or more SSDs),
//!   including the paper's performance-optimized and cost-optimized systems,
//! * [`cost`] — the hardware cost model behind the cost-efficiency analysis
//!   (Fig. 18).

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
pub mod accelerators;
pub mod cost;
pub mod cpu;
pub mod memory;
pub mod system;

pub use accelerators::{MappingAccelerator, PimKmerMatcher, SortingAccelerator};
pub use cpu::{HostCpu, HostThroughput};
pub use memory::HostMemory;
pub use system::SystemConfig;
