//! Host CPU throughput and power model.
//!
//! Aggregate (all-core, best thread count) throughputs for the software
//! kernels of the metagenomic analysis pipeline, calibrated so that the
//! baseline behaviours reported in §3 and §6.1 of the paper hold on the
//! reference host (AMD EPYC 7742, 128 physical cores):
//!
//! * Kraken2-class classification of a 100 M-read sample costs a few hundred
//!   seconds of compute on top of its database-load I/O,
//! * Metalign-class analysis spends tens of seconds extracting and sorting
//!   k-mers, and (for CAMI-L) a few hundred seconds retrieving taxIDs through
//!   pointer-chasing sketch-tree lookups,
//! * the overall A-Opt runtimes land near the ~1,700 s (SSD-C) and ~400 s
//!   (SSD-P) totals shown in Fig. 13.

use megis_ssd::timing::SimDuration;

/// Aggregate host throughputs for the pipeline's software kernels.
///
/// All rates are aggregate across the whole socket at the best-performing
/// thread count, in "operations per second" of the unit named in each field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostThroughput {
    /// k-mer extraction (KMC-style counting/partitioning), in input bases/s.
    pub kmer_extraction_bases_per_sec: f64,
    /// In-memory k-mer sorting (including exclusion filtering), in k-mers/s.
    pub sort_kmers_per_sec: f64,
    /// Hash-table k-mer lookups + read classification (Kraken2-style), in
    /// k-mer lookups/s.
    pub hash_classify_kmers_per_sec: f64,
    /// Ternary-search-tree sketch lookups (CMash-style, pointer chasing), in
    /// query k-mers/s.
    pub tree_lookup_kmers_per_sec: f64,
    /// Sorted-stream merge/intersection compute (branchy compares), in
    /// element comparisons/s.
    pub stream_merge_elems_per_sec: f64,
    /// Format conversion (ASCII → 2-bit), in bases/s.
    pub format_convert_bases_per_sec: f64,
    /// Read mapping in software (seed-and-extend), in reads/s.
    pub software_mapping_reads_per_sec: f64,
}

impl Default for HostThroughput {
    fn default() -> Self {
        HostThroughput {
            kmer_extraction_bases_per_sec: 1.0e9,
            sort_kmers_per_sec: 150e6,
            hash_classify_kmers_per_sec: 50e6,
            tree_lookup_kmers_per_sec: 0.7e6,
            stream_merge_elems_per_sec: 500e6,
            format_convert_bases_per_sec: 5e9,
            software_mapping_reads_per_sec: 0.5e6,
        }
    }
}

/// The host CPU: core count, kernel throughputs, and power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCpu {
    /// Number of physical cores (128 on the reference EPYC 7742 node).
    pub cores: u32,
    /// Aggregate kernel throughputs at the best thread count.
    pub throughput: HostThroughput,
    /// Package power when running the analysis (W).
    pub active_power_w: f64,
    /// Package power when idle (W).
    pub idle_power_w: f64,
}

impl Default for HostCpu {
    fn default() -> Self {
        HostCpu {
            cores: 128,
            throughput: HostThroughput::default(),
            active_power_w: 280.0,
            idle_power_w: 80.0,
        }
    }
}

impl HostCpu {
    /// A smaller, cost-optimized host CPU (used together with the
    /// cost-optimized system of Fig. 18). Throughputs scale with core count.
    pub fn cost_optimized() -> HostCpu {
        HostCpu::default().scaled_to_cores(32)
    }

    /// Returns a copy scaled to a different core count, scaling all aggregate
    /// throughputs and active power proportionally (idle power scales less).
    pub fn scaled_to_cores(&self, cores: u32) -> HostCpu {
        assert!(cores > 0, "core count must be positive");
        let f = cores as f64 / self.cores as f64;
        HostCpu {
            cores,
            throughput: HostThroughput {
                kmer_extraction_bases_per_sec: self.throughput.kmer_extraction_bases_per_sec * f,
                sort_kmers_per_sec: self.throughput.sort_kmers_per_sec * f,
                hash_classify_kmers_per_sec: self.throughput.hash_classify_kmers_per_sec * f,
                tree_lookup_kmers_per_sec: self.throughput.tree_lookup_kmers_per_sec * f,
                stream_merge_elems_per_sec: self.throughput.stream_merge_elems_per_sec * f,
                format_convert_bases_per_sec: self.throughput.format_convert_bases_per_sec * f,
                software_mapping_reads_per_sec: self.throughput.software_mapping_reads_per_sec * f,
            },
            active_power_w: self.active_power_w * f.max(0.3),
            idle_power_w: self.idle_power_w * f.sqrt(),
        }
    }

    /// Time to extract k-mers from `bases` input bases.
    pub fn kmer_extraction_time(&self, bases: u64) -> SimDuration {
        SimDuration::from_secs(bases as f64 / self.throughput.kmer_extraction_bases_per_sec)
    }

    /// Time to sort (and exclusion-filter) `kmers` k-mers. An `n log n`
    /// correction relative to a 1-billion-element baseline keeps large sorts
    /// slightly super-linear.
    pub fn sort_time(&self, kmers: u64) -> SimDuration {
        if kmers == 0 {
            return SimDuration::ZERO;
        }
        let n = kmers as f64;
        let log_correction = (n.log2() / 30.0).max(0.5);
        SimDuration::from_secs(n * log_correction / self.throughput.sort_kmers_per_sec)
    }

    /// Time to classify `kmer_lookups` hash-table lookups (Kraken2-style).
    pub fn hash_classify_time(&self, kmer_lookups: u64) -> SimDuration {
        SimDuration::from_secs(kmer_lookups as f64 / self.throughput.hash_classify_kmers_per_sec)
    }

    /// Time to look up `queries` k-mers in a ternary-search-tree sketch
    /// database (CMash-style pointer chasing).
    pub fn tree_lookup_time(&self, queries: u64) -> SimDuration {
        SimDuration::from_secs(queries as f64 / self.throughput.tree_lookup_kmers_per_sec)
    }

    /// Compute time for a sorted-stream merge over `elements` total elements.
    pub fn stream_merge_time(&self, elements: u64) -> SimDuration {
        SimDuration::from_secs(elements as f64 / self.throughput.stream_merge_elems_per_sec)
    }

    /// Time to convert `bases` bases from ASCII to the 2-bit encoding.
    pub fn format_convert_time(&self, bases: u64) -> SimDuration {
        SimDuration::from_secs(bases as f64 / self.throughput.format_convert_bases_per_sec)
    }

    /// Time to map `reads` reads in software (no accelerator).
    pub fn software_mapping_time(&self, reads: u64) -> SimDuration {
        SimDuration::from_secs(reads as f64 / self.throughput.software_mapping_reads_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_reference_host() {
        let cpu = HostCpu::default();
        assert_eq!(cpu.cores, 128);
        // 100M reads × 150 bases ≈ 15 Gbases → ~15 s of extraction.
        let t = cpu.kmer_extraction_time(15_000_000_000);
        assert!(t.as_secs() > 8.0 && t.as_secs() < 30.0, "got {}", t);
    }

    #[test]
    fn sort_time_is_superlinear() {
        let cpu = HostCpu::default();
        let small = cpu.sort_time(1_000_000);
        let large = cpu.sort_time(100_000_000);
        assert!(large.as_secs() > 100.0 * small.as_secs());
    }

    #[test]
    fn kraken_class_compute_is_hundreds_of_seconds() {
        let cpu = HostCpu::default();
        // 100M reads × ~116 k-mers/read (k = 35) ≈ 11.6 G lookups.
        let t = cpu.hash_classify_time(11_600_000_000);
        assert!(t.as_secs() > 150.0 && t.as_secs() < 350.0, "got {}", t);
    }

    #[test]
    fn tree_lookups_dominate_streaming_merges() {
        let cpu = HostCpu::default();
        let n = 400_000_000;
        assert!(cpu.tree_lookup_time(n).as_secs() > 20.0 * cpu.stream_merge_time(n).as_secs());
    }

    #[test]
    fn scaling_preserves_per_core_rates() {
        let full = HostCpu::default();
        let half = full.scaled_to_cores(64);
        assert_eq!(half.cores, 64);
        let ratio = half.throughput.sort_kmers_per_sec / full.throughput.sort_kmers_per_sec;
        assert!((ratio - 0.5).abs() < 1e-9);
        assert!(half.active_power_w < full.active_power_w);
    }

    #[test]
    fn zero_work_takes_zero_time() {
        let cpu = HostCpu::default();
        assert_eq!(cpu.sort_time(0), SimDuration::ZERO);
        assert_eq!(cpu.kmer_extraction_time(0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cores_panics() {
        HostCpu::default().scaled_to_cores(0);
    }
}
