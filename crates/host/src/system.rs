//! Full-system configurations: host CPU + host DRAM + one or more SSDs.
//!
//! The paper evaluates two system classes (Fig. 18): a *performance-optimized*
//! system (1 TB DRAM + SSD-P) and a *cost-optimized* system (64 GB DRAM +
//! SSD-C), plus sweeps over DRAM capacity (Fig. 16), SSD count (Fig. 15) and
//! SSD internal bandwidth (Fig. 17). [`SystemConfig`] captures one point of
//! that space.

use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;

use crate::accelerators::{MappingAccelerator, PimKmerMatcher, SortingAccelerator};
use crate::cpu::HostCpu;
use crate::memory::HostMemory;

/// One full-system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Human-readable name for reports.
    pub name: String,
    /// Host CPU model.
    pub cpu: HostCpu,
    /// Host DRAM model.
    pub memory: HostMemory,
    /// The SSDs attached to the system (identical devices; databases can be
    /// partitioned across them).
    pub ssds: Vec<SsdConfig>,
    /// Optional sorting accelerator available to Step 1 (used in the
    /// multi-sample experiments).
    pub sorting_accelerator: Option<SortingAccelerator>,
    /// Read-mapping accelerator used for abundance estimation.
    pub mapping_accelerator: MappingAccelerator,
    /// PIM k-mer matcher (present only in the PIM-accelerated baseline).
    pub pim_matcher: Option<PimKmerMatcher>,
}

impl SystemConfig {
    /// The paper's reference evaluation system: 128-core host, 1 TB DRAM, one
    /// SSD of the given configuration.
    pub fn reference(ssd: SsdConfig) -> SystemConfig {
        SystemConfig {
            name: format!("reference ({})", ssd.name),
            cpu: HostCpu::default(),
            memory: HostMemory::default(),
            ssds: vec![ssd],
            sorting_accelerator: None,
            mapping_accelerator: MappingAccelerator::default(),
            pim_matcher: None,
        }
    }

    /// The performance-optimized system of Fig. 18: 1 TB DRAM + SSD-P.
    pub fn performance_optimized() -> SystemConfig {
        let mut cfg = SystemConfig::reference(SsdConfig::ssd_p());
        cfg.name = "performance-optimized (1 TB DRAM, SSD-P)".to_string();
        cfg
    }

    /// The cost-optimized system of Fig. 18: 64 GB DRAM + SSD-C.
    pub fn cost_optimized() -> SystemConfig {
        SystemConfig {
            name: "cost-optimized (64 GB DRAM, SSD-C)".to_string(),
            cpu: HostCpu::default(),
            memory: HostMemory::with_capacity(ByteSize::from_gb(64.0)),
            ssds: vec![SsdConfig::ssd_c()],
            sorting_accelerator: None,
            mapping_accelerator: MappingAccelerator::default(),
            pim_matcher: None,
        }
    }

    /// Returns a copy with a different host DRAM capacity (Fig. 16 sweep).
    pub fn with_dram_capacity(mut self, capacity: ByteSize) -> SystemConfig {
        self.memory = HostMemory::with_capacity(capacity);
        self.name = format!("{} [DRAM {capacity}]", self.name);
        self
    }

    /// Returns a copy with `count` identical SSDs (Fig. 15 sweep).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no SSD or `count` is zero.
    pub fn with_ssd_count(mut self, count: usize) -> SystemConfig {
        assert!(count > 0, "at least one SSD is required");
        let template = self
            .ssds
            .first()
            .expect("existing SSD to replicate")
            .clone();
        self.ssds = vec![template; count];
        self.name = format!("{} [{} SSDs]", self.name, count);
        self
    }

    /// Returns a copy whose SSDs have `channels` channels each (Fig. 17 sweep).
    pub fn with_ssd_channels(mut self, channels: u32) -> SystemConfig {
        self.ssds = self
            .ssds
            .iter()
            .map(|s| s.with_channels(channels))
            .collect();
        self
    }

    /// Returns a copy with a sorting accelerator attached.
    pub fn with_sorting_accelerator(mut self, acc: SortingAccelerator) -> SystemConfig {
        self.sorting_accelerator = Some(acc);
        self
    }

    /// Returns a copy with a Sieve-style PIM k-mer matcher attached.
    pub fn with_pim_matcher(mut self, pim: PimKmerMatcher) -> SystemConfig {
        self.pim_matcher = Some(pim);
        self
    }

    /// Splits a multi-SSD system into per-device single-SSD views, one per
    /// database shard (the shard-local system a disjoint partition of the
    /// sorted k-mer database lives on, §6.1 "Effect of the Number of SSDs").
    /// The batch scheduler uses these views to model per-shard service times.
    pub fn shard_systems(&self) -> Vec<SystemConfig> {
        self.ssds
            .iter()
            .enumerate()
            .map(|(i, ssd)| {
                let mut shard = self.clone();
                shard.ssds = vec![ssd.clone()];
                shard.name = format!("{} [shard {i}]", self.name);
                shard
            })
            .collect()
    }

    /// The first (or only) SSD.
    ///
    /// # Panics
    ///
    /// Panics if the system has no SSD.
    pub fn primary_ssd(&self) -> &SsdConfig {
        self.ssds.first().expect("system has at least one SSD")
    }

    /// Number of attached SSDs.
    pub fn ssd_count(&self) -> usize {
        self.ssds.len()
    }

    /// Aggregate external sequential-read bandwidth across all SSDs.
    pub fn aggregate_external_read_bandwidth(&self) -> f64 {
        self.ssds
            .iter()
            .map(SsdConfig::external_read_bandwidth)
            .sum()
    }

    /// Aggregate internal read bandwidth across all SSDs.
    pub fn aggregate_internal_read_bandwidth(&self) -> f64 {
        self.ssds
            .iter()
            .map(SsdConfig::internal_read_bandwidth)
            .sum()
    }

    /// Aggregate random-read bandwidth (4-KiB requests) across all SSDs.
    pub fn aggregate_random_read_bandwidth(&self) -> f64 {
        self.ssds
            .iter()
            .map(SsdConfig::external_random_read_bandwidth)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_system_shape() {
        let sys = SystemConfig::reference(SsdConfig::ssd_c());
        assert_eq!(sys.ssd_count(), 1);
        assert_eq!(sys.memory.capacity.as_gb(), 1000.0);
        assert!(sys.pim_matcher.is_none());
    }

    #[test]
    fn cost_and_performance_presets_differ() {
        let perf = SystemConfig::performance_optimized();
        let cost = SystemConfig::cost_optimized();
        assert!(perf.memory.capacity > cost.memory.capacity);
        assert!(
            perf.aggregate_external_read_bandwidth() > cost.aggregate_external_read_bandwidth()
        );
    }

    #[test]
    fn ssd_count_sweep_scales_bandwidth() {
        let one = SystemConfig::reference(SsdConfig::ssd_c());
        let four = one.clone().with_ssd_count(4);
        assert_eq!(four.ssd_count(), 4);
        let ratio =
            four.aggregate_internal_read_bandwidth() / one.aggregate_internal_read_bandwidth();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn channel_sweep_scales_internal_only() {
        let base = SystemConfig::reference(SsdConfig::ssd_p());
        let wide = base.clone().with_ssd_channels(32);
        assert!(
            wide.aggregate_internal_read_bandwidth()
                > base.aggregate_internal_read_bandwidth() * 1.9
        );
        assert_eq!(
            wide.aggregate_external_read_bandwidth(),
            base.aggregate_external_read_bandwidth()
        );
    }

    #[test]
    fn dram_sweep_changes_capacity_only() {
        let base = SystemConfig::reference(SsdConfig::ssd_c());
        let small = base.clone().with_dram_capacity(ByteSize::from_gb(32.0));
        assert_eq!(small.memory.capacity.as_gb(), 32.0);
        assert_eq!(small.cpu.cores, base.cpu.cores);
    }

    #[test]
    fn shard_systems_split_one_device_each() {
        let sys = SystemConfig::reference(SsdConfig::ssd_c()).with_ssd_count(4);
        let shards = sys.shard_systems();
        assert_eq!(shards.len(), 4);
        for shard in &shards {
            assert_eq!(shard.ssd_count(), 1);
            assert_eq!(
                shard.aggregate_internal_read_bandwidth(),
                sys.aggregate_internal_read_bandwidth() / 4.0
            );
            assert_eq!(shard.cpu.cores, sys.cpu.cores);
        }
    }

    #[test]
    fn accelerator_attachment() {
        let sys = SystemConfig::reference(SsdConfig::ssd_c())
            .with_sorting_accelerator(SortingAccelerator::default())
            .with_pim_matcher(PimKmerMatcher::default());
        assert!(sys.sorting_accelerator.is_some());
        assert!(sys.pim_matcher.is_some());
    }
}
