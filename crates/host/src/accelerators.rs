//! Throughput models of the hardware accelerators the paper integrates with
//! or compares against.
//!
//! * [`PimKmerMatcher`] — a Sieve-style processing-in-memory k-mer matching
//!   accelerator, used as the hardware-accelerated baseline of Fig. 19 (it
//!   removes the k-mer-matching compute bottleneck of the R-Qry baseline but
//!   still pays the full database-load I/O).
//! * [`SortingAccelerator`] — a TopSort/Bonsai-class FPGA merge-sort
//!   accelerator MegIS can optionally use for Step 1 sorting (multi-sample
//!   use case, §4.7 / Fig. 21).
//! * [`MappingAccelerator`] — a GenCache-class read-mapping accelerator used
//!   for abundance estimation by both Metalign and MegIS (§5).
//!
//! All three are modeled with the throughputs the paper takes from the
//! respective original publications.

use megis_ssd::timing::SimDuration;

/// A Sieve-style PIM k-mer matching accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PimKmerMatcher {
    /// Sustained k-mer match throughput (k-mer lookups/s).
    pub matches_per_sec: f64,
    /// Accelerator (DRAM-based PIM) power in watts while matching.
    pub active_power_w: f64,
}

impl Default for PimKmerMatcher {
    fn default() -> Self {
        PimKmerMatcher {
            // Calibrated so that, per §3.2, a Sieve-accelerated Kraken2 run is
            // compute-wise ~25× faster than the software classification,
            // making No-I/O ≈ 26× faster than SSD-C for the 0.3–0.6 TB DBs.
            matches_per_sec: 450e6,
            // DRAM-based in-situ matching activates many banks concurrently;
            // tens of watts across the PIM-enabled memory.
            active_power_w: 60.0,
        }
    }
}

impl PimKmerMatcher {
    /// Time to match `kmers` query k-mers against the in-memory database.
    pub fn matching_time(&self, kmers: u64) -> SimDuration {
        SimDuration::from_secs(kmers as f64 / self.matches_per_sec)
    }
}

/// A TopSort-class FPGA/HBM sorting accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortingAccelerator {
    /// Sustained sort throughput in keys/s (two-phase merge sort on HBM).
    pub keys_per_sec: f64,
    /// Accelerator power in watts.
    pub active_power_w: f64,
    /// PCIe transfer bandwidth to/from the accelerator in bytes/s.
    pub transfer_bandwidth: f64,
}

impl Default for SortingAccelerator {
    fn default() -> Self {
        SortingAccelerator {
            keys_per_sec: 1.0e9,
            active_power_w: 60.0,
            transfer_bandwidth: 12e9,
        }
    }
}

impl SortingAccelerator {
    /// Time to sort `keys` fixed-width keys of `key_bytes` bytes each,
    /// including moving the data to and from the accelerator.
    pub fn sort_time(&self, keys: u64, key_bytes: u64) -> SimDuration {
        let sort = SimDuration::from_secs(keys as f64 / self.keys_per_sec);
        let transfer =
            SimDuration::from_secs(2.0 * (keys * key_bytes) as f64 / self.transfer_bandwidth);
        sort + transfer
    }
}

/// A GenCache-class in-cache read-mapping accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingAccelerator {
    /// Sustained mapping throughput in reads/s.
    pub reads_per_sec: f64,
    /// Accelerator power in watts.
    pub active_power_w: f64,
}

impl Default for MappingAccelerator {
    fn default() -> Self {
        MappingAccelerator {
            reads_per_sec: 2.0e6,
            active_power_w: 40.0,
        }
    }
}

impl MappingAccelerator {
    /// Time to map `reads` reads against a prepared unified index.
    pub fn mapping_time(&self, reads: u64) -> SimDuration {
        SimDuration::from_secs(reads as f64 / self.reads_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::HostCpu;

    #[test]
    fn pim_is_much_faster_than_software_classification() {
        let cpu = HostCpu::default();
        let pim = PimKmerMatcher::default();
        let lookups = 11_600_000_000;
        let sw = cpu.hash_classify_time(lookups);
        let hw = pim.matching_time(lookups);
        let speedup = sw / hw;
        assert!(speedup > 8.0 && speedup < 30.0, "got {speedup}");
    }

    #[test]
    fn sorting_accelerator_beats_host_sort() {
        let cpu = HostCpu::default();
        let acc = SortingAccelerator::default();
        let kmers = 4_000_000_000;
        assert!(acc.sort_time(kmers, 15) < cpu.sort_time(kmers));
    }

    #[test]
    fn sort_time_includes_transfers() {
        let acc = SortingAccelerator::default();
        let with_big_keys = acc.sort_time(1_000_000_000, 64);
        let with_small_keys = acc.sort_time(1_000_000_000, 8);
        assert!(with_big_keys > with_small_keys);
    }

    #[test]
    fn mapping_accelerator_time_scales_with_reads() {
        let acc = MappingAccelerator::default();
        let t = acc.mapping_time(100_000_000);
        assert!((t.as_secs() - 50.0).abs() < 1.0);
    }
}
