//! Host DRAM model: capacity, bandwidth, power, and the chunking/page-swap
//! behaviour used when the analysis working set exceeds DRAM (Fig. 16).

use megis_ssd::timing::{ByteSize, SimDuration};

/// Host main memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostMemory {
    /// Installed DRAM capacity.
    pub capacity: ByteSize,
    /// Sustained bandwidth in bytes/s (8-channel DDR4-3200 ≈ 200 GB/s).
    pub bandwidth: f64,
    /// Power per installed gigabyte (W/GB); DDR4 LRDIMMs draw roughly
    /// 0.4 W per 8 GB plus controller overheads.
    pub power_w_per_gb: f64,
}

impl Default for HostMemory {
    /// The reference host's 1 TB DDR4 configuration.
    fn default() -> Self {
        HostMemory {
            capacity: ByteSize::from_tb(1.0),
            bandwidth: 200e9,
            power_w_per_gb: 0.08,
        }
    }
}

impl HostMemory {
    /// Creates a memory configuration with a different capacity (bandwidth is
    /// assumed unchanged — the paper varies only capacity in Fig. 16).
    pub fn with_capacity(capacity: ByteSize) -> HostMemory {
        HostMemory {
            capacity,
            ..HostMemory::default()
        }
    }

    /// Total DRAM power in watts.
    pub fn power_w(&self) -> f64 {
        self.capacity.as_gb() * self.power_w_per_gb
    }

    /// Time to stream `size` bytes through memory.
    pub fn stream_time(&self, size: ByteSize) -> SimDuration {
        size.time_at(self.bandwidth)
    }

    /// Returns `true` if a working set of `size` bytes fits in memory
    /// (leaving a fixed 10% headroom for the OS and the application).
    pub fn fits(&self, size: ByteSize) -> bool {
        (size.as_bytes() as f64) <= self.capacity.as_bytes() as f64 * 0.9
    }

    /// Number of chunks a `working_set` must be split into so that each chunk
    /// fits in memory (1 if it already fits). This drives the chunked
    /// database processing used for the R-Qry baseline with small DRAM
    /// (Fig. 16): every chunk must be loaded from storage and all queries
    /// re-scanned against it.
    pub fn chunks_needed(&self, working_set: ByteSize) -> u64 {
        if working_set == ByteSize::ZERO {
            return 1;
        }
        let usable = (self.capacity.as_bytes() as f64 * 0.9) as u64;
        if usable == 0 {
            return u64::MAX;
        }
        working_set.as_bytes().div_ceil(usable).max(1)
    }

    /// Bytes that overflow memory and would be swapped to storage when a
    /// working set does not fit and the application does *not* chunk its
    /// accesses (the page-swap case MegIS's bucketing avoids, §4.2.1).
    pub fn overflow(&self, working_set: ByteSize) -> ByteSize {
        let usable = ByteSize::from_bytes((self.capacity.as_bytes() as f64 * 0.9) as u64);
        working_set.saturating_sub(usable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_one_terabyte() {
        let m = HostMemory::default();
        assert_eq!(m.capacity.as_gb(), 1000.0);
        assert!(m.power_w() > 50.0 && m.power_w() < 150.0);
    }

    #[test]
    fn fits_leaves_headroom() {
        let m = HostMemory::with_capacity(ByteSize::from_gb(64.0));
        assert!(m.fits(ByteSize::from_gb(57.0)));
        assert!(!m.fits(ByteSize::from_gb(60.0)));
    }

    #[test]
    fn chunks_needed_scales_with_working_set() {
        let m = HostMemory::with_capacity(ByteSize::from_gb(64.0));
        assert_eq!(m.chunks_needed(ByteSize::from_gb(10.0)), 1);
        assert_eq!(m.chunks_needed(ByteSize::from_gb(293.0)), 6);
        let m_small = HostMemory::with_capacity(ByteSize::from_gb(32.0));
        assert!(m_small.chunks_needed(ByteSize::from_gb(293.0)) > 10);
    }

    #[test]
    fn overflow_is_zero_when_fitting() {
        let m = HostMemory::with_capacity(ByteSize::from_gb(128.0));
        assert_eq!(m.overflow(ByteSize::from_gb(60.0)), ByteSize::ZERO);
        assert!(m.overflow(ByteSize::from_gb(200.0)).as_gb() > 80.0);
    }

    #[test]
    fn stream_time_uses_bandwidth() {
        let m = HostMemory::default();
        let t = m.stream_time(ByteSize::from_gb(200.0));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }
}
