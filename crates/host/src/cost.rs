//! Hardware cost model for the cost-efficiency analysis (Fig. 18).
//!
//! The paper prices the performance-optimized system's 1 TB of DRAM at about
//! 7,080 USD (8 × 128 GB LRDIMMs) and its SSD-P at about 875 USD, versus
//! roughly 312 USD (8 × 8 GB DIMMs) and 346 USD for the cost-optimized
//! system's DRAM and SSD-C (§6.1, footnote 13).

use megis_ssd::config::{InterfaceKind, SsdConfig};
use megis_ssd::timing::ByteSize;

use crate::system::SystemConfig;

/// Price of one SSD in USD.
pub fn ssd_price_usd(ssd: &SsdConfig) -> f64 {
    match ssd.interface {
        InterfaceKind::Sata3 => 346.0,
        InterfaceKind::PcieGen4x4 => 875.0,
    }
}

/// Price of a host DRAM configuration in USD.
///
/// Large configurations require high-density LRDIMMs (≈55 USD/ GB above
/// 128 GB total); small configurations use commodity DIMMs (≈4.9 USD/GB).
pub fn dram_price_usd(capacity: ByteSize) -> f64 {
    let gb = capacity.as_gb();
    if gb > 128.0 {
        gb * 7.08
    } else {
        gb * 4.875
    }
}

/// Storage + memory price of a system in USD (the components the paper's
/// cost-efficiency argument varies; CPU cost is common to both systems).
pub fn system_price_usd(system: &SystemConfig) -> f64 {
    let ssds: f64 = system.ssds.iter().map(ssd_price_usd).sum();
    ssds + dram_price_usd(system.memory.capacity)
}

/// Cost-efficiency of a run: work per dollar-second, i.e. `1 / (price ×
/// runtime)` scaled by 1e6 for readability. Higher is better.
pub fn cost_efficiency(price_usd: f64, runtime_secs: f64) -> f64 {
    assert!(price_usd > 0.0 && runtime_secs > 0.0);
    1e6 / (price_usd * runtime_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_price_points_are_reproduced() {
        assert!((dram_price_usd(ByteSize::from_tb(1.0)) - 7080.0).abs() < 1.0);
        assert!((dram_price_usd(ByteSize::from_gb(64.0)) - 312.0).abs() < 1.0);
        assert_eq!(ssd_price_usd(&SsdConfig::ssd_p()), 875.0);
        assert_eq!(ssd_price_usd(&SsdConfig::ssd_c()), 346.0);
    }

    #[test]
    fn performance_system_costs_several_times_more() {
        let perf = system_price_usd(&SystemConfig::performance_optimized());
        let cost = system_price_usd(&SystemConfig::cost_optimized());
        assert!(perf / cost > 8.0, "perf {perf} vs cost {cost}");
    }

    #[test]
    fn cost_efficiency_prefers_cheaper_and_faster() {
        let a = cost_efficiency(1000.0, 100.0);
        let b = cost_efficiency(500.0, 100.0);
        let c = cost_efficiency(1000.0, 50.0);
        assert!(b > a && c > a);
    }

    #[test]
    #[should_panic]
    fn zero_price_panics() {
        cost_efficiency(0.0, 10.0);
    }
}
