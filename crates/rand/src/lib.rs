//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The MegIS reproduction builds in environments without access to a crate
//! registry, so this shim provides exactly the API surface the workspace
//! uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and [`Rng::gen_bool`] —
//! backed by the SplitMix64 generator. Streams are deterministic for a given
//! seed (the property the synthetic-community builders rely on), but are
//! *not* bit-compatible with the real `rand` crate.

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, implemented for the range types the workspace draws from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to a uniform float in `[0, 1)` (53-bit precision).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// SplitMix64 passes BigCrush, needs only one word of state, and is the
    /// generator recommended for seeding the xoshiro family — ample quality
    /// for driving synthetic genome and read simulation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..4);
            assert!(v < 4);
            let w: usize = rng.gen_range(10..=20);
            assert!((10..=20).contains(&w));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.05)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.05 gave {hits}/100000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: usize = rng.gen_range(5..5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        rng.gen_bool(1.5);
    }
}
