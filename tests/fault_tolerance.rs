//! Seeded chaos tests for the fault-tolerant device array: deterministic
//! fault injection at the shard-worker seam, retry/backoff accounting,
//! zero-copy shard failover, and per-job failure isolation. Every
//! recoverable scenario must end byte-identical to the sequential
//! `MegisAnalyzer::analyze` oracle.

use std::time::Duration;

use megis::config::MegisConfig;
use megis::{MegisAnalyzer, MegisOutput};
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_sched::{EngineConfig, FaultPlan, JobError, JobSpec, StreamingEngine, TraceEventKind};

fn cohort(n: usize) -> (MegisAnalyzer, Vec<Sample>) {
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(100)
        .with_database_species(12);
    let reference_community = base.build(512);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    let samples = (0..n)
        .map(|i| {
            base.build_cohort_sample(512, 9000 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

/// Runs `samples` through a streaming engine under `config`, asserting
/// every job succeeds, and returns the outputs in submission order plus
/// the shutdown report.
fn run_expecting_success(
    analyzer: MegisAnalyzer,
    samples: &[Sample],
    config: EngineConfig,
) -> (Vec<MegisOutput>, megis_sched::ServiceReport) {
    let engine = StreamingEngine::new(analyzer, config);
    let handles: Vec<_> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            engine
                .submit(JobSpec::new(format!("s{i}"), s.clone()))
                .expect("admission")
        })
        .collect();
    let outputs = handles
        .into_iter()
        .map(|h| h.wait().expect("job recovered").output)
        .collect();
    (outputs, engine.shutdown())
}

/// Every command faults exactly once (rate 1.0, burst 1) across a grid of
/// worker/shard shapes; the engine retries each in place and the results
/// stay byte-identical to the sequential oracle, with exact
/// faults == retries accounting.
#[test]
fn transient_fault_storm_is_invisible_to_results() {
    const SAMPLES: usize = 6;
    let (analyzer, samples) = cohort(SAMPLES);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();

    for (workers, shards, seed) in [(1usize, 1usize, 7u64), (2, 3, 11), (4, 4, 13)] {
        let plan = FaultPlan::seeded(seed).with_transient_rate(1.0);
        let (outputs, report) = run_expecting_success(
            analyzer.clone(),
            &samples,
            EngineConfig::new()
                .with_workers(workers)
                .with_shards(shards)
                .with_fault_plan(plan),
        );
        for (i, output) in outputs.iter().enumerate() {
            assert_eq!(
                *output, expected[i],
                "w{workers}/s{shards}: sample {i} diverged under transient faults"
            );
        }
        let faults: u64 = report.shard_stats.iter().map(|s| s.faults).sum();
        let retries: u64 = report.shard_stats.iter().map(|s| s.retries).sum();
        assert!(
            faults > 0,
            "w{workers}/s{shards}: the plan injected nothing"
        );
        assert_eq!(
            faults, retries,
            "w{workers}/s{shards}: every transient fault is retried exactly once"
        );
        assert_eq!(report.failed_jobs, 0);
        assert_eq!(report.completed, SAMPLES as u64);
        assert!(
            report.summary().contains("degraded"),
            "faulted run surfaces a degraded-mode line:\n{}",
            report.summary()
        );
    }
}

/// With tracing on, the event log's fault/retry events reconcile with the
/// shard counters, and command issues balance completions plus faults.
#[test]
fn trace_events_reconcile_with_fault_counters() {
    const SAMPLES: usize = 5;
    let (analyzer, samples) = cohort(SAMPLES);
    let plan = FaultPlan::seeded(21).with_transient_rate(1.0);
    let (_, report) = run_expecting_success(
        analyzer,
        &samples,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(3)
            .with_fault_plan(plan)
            .with_tracing(),
    );

    let trace = report.trace.as_ref().expect("tracing on");
    assert_eq!(trace.dropped, 0, "chaos run fits the default ring");
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut fault_events = 0u64;
    let mut retry_events = 0u64;
    for event in &trace.events {
        match event.kind {
            TraceEventKind::CommandIssued { .. } => issued += 1,
            TraceEventKind::CommandCompleted { .. } => completed += 1,
            TraceEventKind::Fault { .. } => fault_events += 1,
            TraceEventKind::Retry { .. } => retry_events += 1,
            _ => {}
        }
    }
    let faults: u64 = report.shard_stats.iter().map(|s| s.faults).sum();
    let retries: u64 = report.shard_stats.iter().map(|s| s.retries).sum();
    assert_eq!(fault_events, faults, "trace and counters agree on faults");
    assert_eq!(retry_events, retries, "trace and counters agree on retries");
    assert_eq!(
        issued,
        completed + faults,
        "every issue ends in exactly one completion or fault"
    );
    let straggler = report.straggler.as_ref().expect("straggler analysis");
    assert_eq!(straggler.faults.iter().sum::<u64>(), faults);
    assert_eq!(straggler.retries.iter().sum::<u64>(), retries);
}

/// A shard dies permanently after its first command; its outstanding and
/// future commands fail over to the surviving device (which holds the same
/// zero-copy storage) and every result stays byte-identical.
#[test]
fn dead_shard_fails_over_without_losing_a_job() {
    const SAMPLES: usize = 6;
    let (analyzer, samples) = cohort(SAMPLES);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();

    let plan = FaultPlan::seeded(5).with_shard_death(0, 1);
    let (outputs, report) = run_expecting_success(
        analyzer,
        &samples,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(2)
            .with_fault_plan(plan),
    );
    for (i, output) in outputs.iter().enumerate() {
        assert_eq!(*output, expected[i], "sample {i} diverged after failover");
    }
    assert!(report.shard_stats[0].dead, "shard 0 reported dead");
    assert!(!report.shard_stats[1].dead, "shard 1 survived");
    let failovers: u64 = report.shard_stats.iter().map(|s| s.failovers).sum();
    assert!(failovers > 0, "commands rerouted off the dead shard");
    assert_eq!(report.failed_jobs, 0);
    assert_eq!(report.completed, SAMPLES as u64);
}

/// An injected worker panic fails only the targeted job: the affected
/// handle resolves to `Err(WorkerPanicked)`, sibling jobs complete with
/// oracle-identical output, and the engine keeps accepting work afterward.
#[test]
fn worker_panic_is_isolated_to_one_job() {
    const SAMPLES: usize = 4;
    let (analyzer, samples) = cohort(SAMPLES + 1);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();

    // One worker, two shards: seq 1's intersect command on shard 0 panics.
    let plan = FaultPlan::seeded(3).with_worker_panic(1, 0);
    let engine = StreamingEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(1)
            .with_shards(2)
            .with_fault_plan(plan),
    );
    let handles: Vec<_> = samples[..SAMPLES]
        .iter()
        .enumerate()
        .map(|(i, s)| {
            engine
                .submit(JobSpec::new(format!("s{i}"), s.clone()))
                .expect("admission")
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(result) => assert_eq!(result.output, expected[i], "surviving sample {i} diverged"),
            Err(JobError::WorkerPanicked { shard, .. }) => {
                assert_eq!(i, 1, "only the targeted job fails");
                assert_eq!(shard, 0, "failure names the panicking device");
            }
            Err(other) => panic!("sample {i}: unexpected failure {other}"),
        }
    }

    // The engine is not poisoned: a fresh submission still completes.
    let late = engine
        .submit(JobSpec::new("late", samples[SAMPLES].clone()))
        .expect("admission after panic");
    let result = late.wait().expect("engine still serves after the panic");
    assert_eq!(result.output, expected[SAMPLES]);

    let report = engine.shutdown();
    assert_eq!(report.failed_jobs, 1);
    assert_eq!(report.completed, SAMPLES as u64, "4 of 5 jobs delivered Ok");
    let error = JobError::WorkerPanicked {
        job: megis_sched::JobId(1),
        shard: 0,
    };
    assert!(error.to_string().contains("failed"), "{error}");
    let dynamic: &dyn std::error::Error = &error;
    assert!(dynamic.to_string().contains("job#"), "{dynamic}");
}

/// A fault burst deeper than the retry budget exhausts it: the job fails
/// with `RetriesExhausted { attempts: budget + 1 }` and the engine drains
/// cleanly instead of hanging on the never-succeeding command.
#[test]
fn retry_budget_exhaustion_fails_the_job_not_the_engine() {
    let (analyzer, samples) = cohort(2);

    // Burst 10 >> budget 2: the first sampled command can never succeed.
    let plan = FaultPlan::seeded(17)
        .with_transient_rate(1.0)
        .with_transient_burst(10);
    let engine = StreamingEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(1)
            .with_shards(1)
            .with_fault_plan(plan)
            .with_retry_budget(2)
            .with_retry_backoff(Duration::from_micros(50)),
    );
    let doomed = engine
        .submit(JobSpec::new("doomed", samples[0].clone()))
        .expect("admission");
    match doomed.wait() {
        Err(JobError::RetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 3, "budget 2 allows attempts 0, 1, 2");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }

    // Rate 1.0 dooms every command equally, so prove the engine itself
    // survived by letting the second job exhaust too, then draining.
    let second = engine
        .submit(JobSpec::new("also-doomed", samples[1].clone()))
        .expect("admission after failure");
    assert!(second.wait().is_err());
    let report = engine.shutdown();
    assert_eq!(report.failed_jobs, 2);
    assert_eq!(report.completed, 0);
}
