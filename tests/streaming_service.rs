//! Integration tests for `megis-sched` service mode: submissions from many
//! concurrent threads while the engine runs, graceful drain, byte-identical
//! results versus the sequential analyzer, and the in-SSD ordering
//! guarantee.

use std::sync::Arc;
use std::thread;

use megis::config::MegisConfig;
use megis::{MegisAnalyzer, MegisOutput};
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_sched::{
    BatchEngine, EngineConfig, JobHandle, JobResult, JobSpec, Priority, SchedPolicy,
    StreamingEngine,
};

fn cohort(n: usize) -> (MegisAnalyzer, Vec<Sample>) {
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(100)
        .with_database_species(12);
    let reference_community = base.build(512);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    // Same references (seed 512), independent read streams per sample.
    let samples = (0..n)
        .map(|i| {
            base.build_cohort_sample(512, 9000 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

#[test]
fn concurrent_submitters_get_results_identical_to_sequential_analyze() {
    // The acceptance scenario: jobs arrive from 4 submitter threads while
    // the engine is running, the service drains gracefully, and every
    // result is byte-identical to per-sample `MegisAnalyzer::analyze`.
    const SAMPLES: usize = 16;
    const SUBMITTERS: usize = 4;
    let (analyzer, samples) = cohort(SAMPLES);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();

    let engine = Arc::new(StreamingEngine::new(
        analyzer,
        EngineConfig::new().with_workers(4).with_shards(3),
    ));
    let handles: Vec<(usize, JobHandle)> = thread::scope(|scope| {
        let mut joins = Vec::new();
        for submitter in 0..SUBMITTERS {
            let engine = Arc::clone(&engine);
            let samples = &samples;
            joins.push(scope.spawn(move || {
                (submitter..SAMPLES)
                    .step_by(SUBMITTERS)
                    .map(|i| {
                        let handle = engine
                            .submit(JobSpec::new(format!("s{i}"), samples[i].clone()))
                            .expect("admission while running");
                        (i, handle)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("submitter thread"))
            .collect()
    });
    assert_eq!(handles.len(), SAMPLES);

    engine.drain();
    let mut positions = Vec::new();
    for (i, handle) in handles {
        let result = handle
            .try_wait()
            .expect("drained job already delivered")
            .expect("job succeeded");
        assert_eq!(
            result.output, expected[i],
            "{} diverged from sequential analyze",
            result.label
        );
        assert_eq!(
            result.isp_position, result.start_position,
            "in-SSD stage must serve dispatch order"
        );
        positions.push(result.start_position);
    }
    positions.sort_unstable();
    assert_eq!(
        positions,
        (0..SAMPLES).collect::<Vec<_>>(),
        "service positions are dense"
    );

    let engine = Arc::try_unwrap(engine).expect("all submitters done");
    let report = engine.shutdown();
    assert_eq!(report.completed, SAMPLES as u64);
    for stats in &report.shard_stats {
        assert_eq!(stats.jobs, SAMPLES as u64, "every shard serves every job");
    }
}

#[test]
fn streaming_and_batch_results_are_identical() {
    // The two modes share one executor; the outputs must match bit for bit.
    let (analyzer, samples) = cohort(6);
    let mut batch = BatchEngine::new(
        analyzer.clone(),
        EngineConfig::new().with_workers(2).with_shards(2),
    );
    for (i, sample) in samples.iter().enumerate() {
        batch
            .submit(JobSpec::new(format!("s{i}"), sample.clone()))
            .unwrap();
    }
    let batch_report = batch.run();

    let service =
        StreamingEngine::new(analyzer, EngineConfig::new().with_workers(2).with_shards(2));
    let handles: Vec<JobHandle> = samples
        .iter()
        .enumerate()
        .map(|(i, sample)| {
            service
                .submit(JobSpec::new(format!("s{i}"), sample.clone()))
                .unwrap()
        })
        .collect();
    for (handle, batch_result) in handles.into_iter().zip(&batch_report.results) {
        let streamed = handle.wait().expect("job succeeded");
        assert_eq!(streamed.id, batch_result.id);
        assert_eq!(streamed.output, batch_result.output);
    }
}

#[test]
fn isp_service_order_follows_priority_policy_with_four_workers() {
    // Acceptance: with `SchedPolicy::Priority` and `workers = 4`, in-SSD
    // service order follows (priority desc, submission asc) exactly. The
    // batch is closed before dispatch so the policy order is fully
    // determined; four workers race Step 1 completion, and the reorder
    // buffer must still hand samples to the in-SSD stage in policy order.
    let (analyzer, samples) = cohort(12);
    let mut engine = BatchEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(4)
            .with_shards(2)
            .with_policy(SchedPolicy::Priority),
    );
    let priority_of = |id: u64| match id {
        1 | 6 | 10 => Priority::High,
        0 | 4 | 8 => Priority::Low,
        _ => Priority::Normal,
    };
    for (i, sample) in samples.iter().enumerate() {
        engine
            .submit(
                JobSpec::new(format!("s{i}"), sample.clone()).with_priority(priority_of(i as u64)),
            )
            .unwrap();
    }
    let report = engine.run();

    let mut served: Vec<&JobResult> = report.results.iter().collect();
    served.sort_by_key(|r| r.isp_position);
    let served_ids: Vec<u64> = served.iter().map(|r| r.id.0).collect();
    let mut expected: Vec<u64> = (0..12).collect();
    expected.sort_by_key(|id| (std::cmp::Reverse(priority_of(*id)), *id));
    assert_eq!(
        served_ids, expected,
        "in-SSD service order must be (priority desc, submission asc)"
    );
    for r in &report.results {
        assert_eq!(r.isp_position, r.start_position);
    }
}

#[test]
fn several_samples_intersections_are_in_flight_per_shard() {
    // Acceptance: with per-shard query slicing and queue depth >= 2, at
    // least two samples' intersection commands are concurrently in flight
    // on one shard (peak queue occupancy >= 2), while delivery still
    // respects dispatch order and every result stays byte-identical to the
    // sequential analyzer. The simulated device latency makes the overlap
    // deterministic: commands dwell on the device long enough for the
    // dispatcher to queue the next sample's command behind them.
    use std::time::Duration;
    let (analyzer, samples) = cohort(10);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();
    let engine = StreamingEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(2)
            .with_queue_depth(4)
            .with_device_latency(Duration::from_millis(2)),
    );
    let handles: Vec<JobHandle> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            engine
                .submit(JobSpec::new(format!("s{i}"), s.clone()))
                .unwrap()
        })
        .collect();
    engine.drain();
    for (handle, expected) in handles.into_iter().zip(&expected) {
        let result = handle
            .try_wait()
            .expect("drained job delivered")
            .expect("job succeeded");
        assert_eq!(result.output, *expected, "{} diverged", result.label);
        assert_eq!(
            result.isp_position, result.start_position,
            "delivery must respect dispatch order"
        );
    }
    let report = engine.shutdown();
    let peak = report
        .shard_stats
        .iter()
        .map(|s| s.peak_inflight)
        .max()
        .unwrap();
    assert!(
        peak >= 2,
        "with depth 4 and dwelling commands, some shard must hold >= 2 \
         samples' intersections at once (observed peak {peak})"
    );
    for stats in &report.shard_stats {
        assert!(
            stats.peak_inflight <= 4,
            "shard {} exceeded the configured depth: {}",
            stats.shard,
            stats.peak_inflight
        );
    }
}

#[test]
fn per_shard_query_work_sums_to_the_query_count() {
    // Work accounting for the range-partitioned dispatch: across all
    // shards, the query items scanned must equal the batch's total selected
    // k-mers |Q| (each query slice visits exactly one shard) — not the
    // N·|Q| the old broadcast dispatch cost.
    let (analyzer, samples) = cohort(6);
    for shards in [1usize, 2, 4, 8] {
        let engine = StreamingEngine::new(
            analyzer.clone(),
            EngineConfig::new().with_workers(2).with_shards(shards),
        );
        let handles: Vec<JobHandle> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                engine
                    .submit(JobSpec::new(format!("s{i}"), s.clone()))
                    .unwrap()
            })
            .collect();
        engine.drain();
        let total_queries: u64 = handles
            .into_iter()
            .map(|h| {
                h.try_wait()
                    .expect("drained")
                    .expect("succeeded")
                    .output
                    .selected_kmers
            })
            .sum();
        let report = engine.shutdown();
        let scanned: u64 = report.shard_stats.iter().map(|s| s.query_items).sum();
        assert_eq!(
            scanned, total_queries,
            "{shards} shards must scan each query exactly once"
        );
    }
}

#[test]
fn snapshot_tracks_rolling_window_and_lifecycle() {
    let (analyzer, samples) = cohort(8);
    let engine = StreamingEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(2)
            .with_metrics_window(4),
    );
    let handles: Vec<JobHandle> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            engine
                .submit(JobSpec::new(format!("s{i}"), s.clone()))
                .unwrap()
        })
        .collect();
    engine.drain();
    let snap = engine.snapshot();
    assert!(snap.accepting);
    assert_eq!(snap.pending, 0);
    assert_eq!(snap.in_flight, 0);
    assert_eq!(snap.completed, 8);
    assert_eq!(
        snap.window.count, 4,
        "rolling window keeps only the newest completions"
    );
    assert!(snap.window.p99 >= snap.window.p50);
    assert!(snap.window_throughput > 0.0);
    drop(handles);
    let report = engine.shutdown();
    assert_eq!(report.completed, 8);
    assert!(report.uptime.as_nanos() > 0);
    assert_eq!(report.window.count, 4);
}
