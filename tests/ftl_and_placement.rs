//! Integration tests for the storage-side substrate: MegIS FTL placement vs
//! the baseline page-level FTL, internal-DRAM budgeting, device-mode command
//! sequencing, and the accelerator area/power model.

use megis::accel::AcceleratorModel;
use megis::commands::{DeviceMode, HostStep, MegisCommand, MegisDevice};
use megis::ftl::MegisFtl;
use megis_ssd::config::SsdConfig;
use megis_ssd::dram::InternalDram;
use megis_ssd::ftl::{Lpa, PageLevelFtl};
use megis_ssd::ssd::Ssd;
use megis_ssd::timing::ByteSize;

#[test]
fn megis_ftl_frees_almost_all_internal_dram() {
    // With the regular page-level FTL, the L2P mapping for a 4 TB device
    // occupies ~4 GB (the whole internal DRAM). MegIS FTL's metadata for a
    // 4 TB database fits in a few megabytes, so nearly all DRAM capacity is
    // available for query batches and the intersection output.
    let config = SsdConfig::ssd_c();
    let mut dram = InternalDram::new(config.dram);

    let page_level = config.page_level_l2p_bytes();
    assert!(page_level.as_bytes() as f64 > 0.9 * dram.capacity().as_bytes() as f64);

    let mut ftl = MegisFtl::new(config.geometry);
    ftl.place_database("kmer-db", ByteSize::from_tb(4.0))
        .unwrap();
    dram.allocate(ftl.total_metadata_bytes()).unwrap();
    assert!(
        dram.available().as_bytes() as f64 > 0.99 * dram.capacity().as_bytes() as f64,
        "MegIS FTL metadata must leave the internal DRAM essentially free"
    );

    // The double-buffered query batches of Step 2 also fit trivially.
    dram.allocate(ByteSize::from_mib(2)).unwrap();
}

#[test]
fn database_placement_enables_full_channel_parallelism() {
    let config = SsdConfig::ssd_p();
    let mut ftl = MegisFtl::new(config.geometry);
    let placement = ftl
        .place_database("kmer-db", ByteSize::from_gb(701.0))
        .unwrap()
        .clone();
    assert!(placement.is_balanced());
    assert_eq!(placement.blocks_per_channel.len(), 16);

    // A sequential read round-robins across all 16 channels.
    let order = ftl.sequential_read_order("kmer-db");
    let first_round: std::collections::HashSet<u32> =
        order.iter().take(16).map(|b| b.channel).collect();
    assert_eq!(first_round.len(), 16);
}

#[test]
fn page_level_ftl_also_stripes_but_needs_page_granular_metadata() {
    let config = SsdConfig::ssd_c();
    let mut page_ftl = PageLevelFtl::new(config.geometry);
    for i in 0..4096 {
        page_ftl.write(Lpa(i)).unwrap();
    }
    let dist = page_ftl.pages_per_channel_distribution();
    assert!(
        dist.iter().all(|c| *c == dist[0]),
        "striping should be even"
    );

    // Metadata cost comparison for the same amount of stored data.
    let stored = ByteSize::from_bytes(4096 * config.geometry.page_size.as_bytes());
    let mut megis_ftl = MegisFtl::new(config.geometry);
    megis_ftl.place_database("db", stored).unwrap();
    assert!(megis_ftl.total_metadata_bytes() < page_ftl.metadata_bytes());
}

#[test]
fn ssd_object_store_and_isp_read_path() {
    let mut ssd = Ssd::new(SsdConfig::ssd_c());
    ssd.store_object("sketch-db", ByteSize::from_gb(14.0))
        .unwrap();
    ssd.store_object("kmer-db", ByteSize::from_gb(701.0))
        .unwrap();

    let internal = ssd.read_object_internal("kmer-db");
    let external = ssd.read_object_external("kmer-db");
    // The ISP path reads the same bytes ~17× faster on SSD-C.
    assert!(external.time / internal.time > 15.0);
    // Reading the KSS-scale sketch database inside the SSD takes ~1.5 s.
    let sketch = ssd.read_object_internal("sketch-db");
    assert!(sketch.time.as_secs() > 1.0 && sketch.time.as_secs() < 2.5);
}

#[test]
fn command_sequence_of_one_analysis_session() {
    let mut device = MegisDevice::new();
    device
        .handle(MegisCommand::Init {
            host_buffer: ByteSize::from_gb(64.0),
        })
        .unwrap();
    // Step 1a: k-mer extraction (spilled buckets may be written).
    device
        .handle(MegisCommand::Step(HostStep::KmerExtraction))
        .unwrap();
    device.handle(MegisCommand::Write { pages: 1024 }).unwrap();
    device
        .handle(MegisCommand::Step(HostStep::KmerExtraction))
        .unwrap();
    assert_eq!(device.mode(), DeviceMode::AcceleratingReadOnly);
    // Step 1b: per-bucket sorting boundaries toggle while ISP runs.
    for _ in 0..4 {
        device
            .handle(MegisCommand::Step(HostStep::Sorting))
            .unwrap();
        device
            .handle(MegisCommand::Step(HostStep::Sorting))
            .unwrap();
    }
    assert!(device.active_steps().is_empty());
    device.finish();
    assert_eq!(device.mode(), DeviceMode::Baseline);
}

#[test]
fn accelerator_overhead_is_small_for_both_ssds() {
    for (config, cores) in [(SsdConfig::ssd_c(), 3), (SsdConfig::ssd_p(), 4)] {
        let acc = AcceleratorModel::new(config.geometry.channels);
        assert!(acc.total_power_w() < 0.02, "ISP logic draws milliwatts");
        assert!(
            acc.area_overhead_vs_cores(cores) < 0.04,
            "area overhead must stay a few percent of the controller cores"
        );
    }
}
