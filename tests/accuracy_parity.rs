//! Accuracy parity and ordering tests (§5 of the paper).
//!
//! * MegIS must report exactly the same species as the accuracy-optimized
//!   S-Qry baseline — its databases encode the same k-mers and sketches, so
//!   the analysis outcome is unchanged by moving the work into the SSD.
//! * Both must be substantially more accurate than the performance-optimized
//!   R-Qry baseline when the latter is built from a sampled (poorer) genome
//!   collection — the reason the paper evaluates against both baselines.

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::metrics::{AbundanceError, ClassificationMetrics};
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_tools::kraken::KrakenClassifier;
use megis_tools::metalign::MetalignClassifier;

#[test]
fn megis_presence_matches_accuracy_optimized_baseline_exactly() {
    for (diversity, seed) in [
        (Diversity::Low, 31),
        (Diversity::Medium, 32),
        (Diversity::High, 33),
    ] {
        let community = CommunityConfig::preset(diversity)
            .with_reads(300)
            .with_database_species(24)
            .build(seed);
        let config = MegisConfig::small();
        let megis = MegisAnalyzer::build(community.references(), config);
        let metalign = MetalignClassifier::build(community.references(), config.sketch);

        let megis_out = megis.identify_presence(community.sample());
        let metalign_out = metalign.identify_presence(community.sample().reads());

        assert_eq!(
            megis_out.presence, metalign_out.presence,
            "{diversity:?}: MegIS and the A-Opt baseline disagree on presence"
        );
        assert_eq!(
            megis_out.intersecting_kmers as usize,
            metalign_out.intersecting_kmers.len(),
            "{diversity:?}: intersection sizes differ"
        );
    }
}

#[test]
fn megis_abundance_matches_accuracy_optimized_baseline_exactly() {
    let community = CommunityConfig::preset(Diversity::Medium)
        .with_reads(300)
        .with_database_species(16)
        .build(41);
    let config = MegisConfig::small();
    let megis = MegisAnalyzer::build(community.references(), config);
    let metalign = MetalignClassifier::build(community.references(), config.sketch);

    let megis_out = megis.analyze(community.sample());
    let metalign_out = metalign.analyze(community.sample().reads());
    assert_eq!(megis_out.abundance, metalign_out.abundance);
}

#[test]
fn accuracy_optimized_flow_beats_sampled_performance_optimized_flow() {
    // The P-Opt baseline's default database encodes a poorer genome collection
    // (sampling for speed); model that by building the R-Qry classifier from
    // a subsampled reference collection. A-Opt/MegIS use the full collection.
    let community = CommunityConfig::preset(Diversity::High)
        .with_reads(500)
        .with_database_species(32)
        .build(47);
    let config = MegisConfig::small();

    let megis = MegisAnalyzer::build(community.references(), config);
    let sampled_refs = community.references().subsample(2);
    let kraken = KrakenClassifier::build(&sampled_refs, 21);

    let truth = community.truth_presence();
    let megis_metrics = ClassificationMetrics::score(
        &megis.identify_presence(community.sample()).presence,
        &truth,
    );
    let kraken_metrics = ClassificationMetrics::score(
        &kraken.classify(community.sample().reads()).presence,
        &truth,
    );

    assert!(
        megis_metrics.f1() > kraken_metrics.f1(),
        "MegIS F1 {} must exceed sampled P-Opt F1 {}",
        megis_metrics.f1(),
        kraken_metrics.f1()
    );
}

#[test]
fn accuracy_optimized_abundance_has_lower_l1_error() {
    let community = CommunityConfig::preset(Diversity::Medium)
        .with_reads(600)
        .with_database_species(24)
        .build(53);
    let config = MegisConfig::small();

    let megis = MegisAnalyzer::build(community.references(), config);
    let sampled_refs = community.references().subsample(2);
    let kraken = KrakenClassifier::build(&sampled_refs, 21);

    let truth = community.truth_profile();
    let megis_err = AbundanceError::score(&megis.analyze(community.sample()).abundance, truth);
    let kraken_err = AbundanceError::score(
        &kraken.classify(community.sample().reads()).abundance,
        truth,
    );
    assert!(
        megis_err.l1_norm < kraken_err.l1_norm,
        "MegIS L1 {} must be below sampled P-Opt L1 {}",
        megis_err.l1_norm,
        kraken_err.l1_norm
    );
}
