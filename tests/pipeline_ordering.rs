//! Integration tests on the paper-scale performance model: the orderings and
//! trends every figure of the evaluation depends on must hold across systems
//! and workloads.

use megis::pipeline::{baseline_multi_sample, software_multi_sample, MegisTimingModel};
use megis::MegisVariant;
use megis_genomics::sample::Diversity;
use megis_host::accelerators::{PimKmerMatcher, SortingAccelerator};
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::kraken::KrakenTimingModel;
use megis_tools::metalign::MetalignTimingModel;
use megis_tools::pim::PimAcceleratedKraken;
use megis_tools::workload::WorkloadSpec;

fn systems() -> Vec<SystemConfig> {
    vec![
        SystemConfig::reference(SsdConfig::ssd_c()),
        SystemConfig::reference(SsdConfig::ssd_p()),
    ]
}

#[test]
fn fig12_ordering_holds_for_every_workload_and_ssd() {
    for system in systems() {
        for workload in WorkloadSpec::all_cami() {
            let p_opt = KrakenTimingModel
                .presence_breakdown(&system, &workload)
                .total();
            let a_opt = MetalignTimingModel::a_opt()
                .presence_breakdown(&system, &workload)
                .total();
            let a_opt_kss = MetalignTimingModel::a_opt_with_kss()
                .presence_breakdown(&system, &workload)
                .total();
            let ext = MegisTimingModel::new(MegisVariant::OutsideSsd)
                .presence_breakdown(&system, &workload)
                .total();
            let nol = MegisTimingModel::new(MegisVariant::NoOverlap)
                .presence_breakdown(&system, &workload)
                .total();
            let cc = MegisTimingModel::new(MegisVariant::ControllerCores)
                .presence_breakdown(&system, &workload)
                .total();
            let ms = MegisTimingModel::full()
                .presence_breakdown(&system, &workload)
                .total();

            let ctx = format!("{} on {}", workload.label, system.name);
            // A-Opt is the slowest software configuration; KSS improves it.
            assert!(a_opt_kss < a_opt, "{ctx}: KSS must improve A-Opt");
            // The full design is the fastest MegIS variant.
            assert!(
                ms <= cc && ms < nol && ms < ext,
                "{ctx}: MS must be fastest"
            );
            // Every ISP variant beats the same accelerators outside the SSD.
            assert!(cc < ext && nol < ext, "{ctx}: ISP must beat Ext-MS");
            // MegIS beats both software baselines.
            assert!(ms < p_opt && ms < a_opt, "{ctx}: MS must beat baselines");
        }
    }
}

#[test]
fn fig12_speedups_are_in_the_papers_range() {
    // Paper: MS is 5.3–6.4× (SSD-C) and 2.7–6.5× (SSD-P) faster than P-Opt,
    // and 12.4–18.2× / 6.9–20.4× faster than A-Opt. The model should land in
    // (a generously widened version of) those bands.
    for system in systems() {
        for workload in WorkloadSpec::all_cami() {
            let ms = MegisTimingModel::full().presence_breakdown(&system, &workload);
            let p = KrakenTimingModel.presence_breakdown(&system, &workload);
            let a = MetalignTimingModel::a_opt().presence_breakdown(&system, &workload);
            let vs_p = ms.speedup_over(&p);
            let vs_a = ms.speedup_over(&a);
            assert!(
                (2.0..12.0).contains(&vs_p),
                "{}: speedup vs P-Opt {vs_p}",
                workload.label
            );
            assert!(
                (5.0..25.0).contains(&vs_a),
                "{}: speedup vs A-Opt {vs_a}",
                workload.label
            );
        }
    }
}

#[test]
fn fig14_speedup_grows_with_database_size() {
    let system = SystemConfig::reference(SsdConfig::ssd_c());
    let base = WorkloadSpec::cami(Diversity::Medium).with_database_scale(1.0 / 3.0);
    let mut previous = 0.0;
    for scale in [1.0, 2.0, 3.0] {
        let w = base.with_database_scale(scale);
        let ms = MegisTimingModel::full().presence_breakdown(&system, &w);
        let p = KrakenTimingModel.presence_breakdown(&system, &w);
        let speedup = ms.speedup_over(&p);
        assert!(
            speedup > previous,
            "speedup must grow with database size (scale {scale}: {speedup} vs {previous})"
        );
        previous = speedup;
    }
}

#[test]
fn fig16_small_dram_hurts_baselines_more_than_megis() {
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let capacities = [1000.0, 128.0, 64.0, 32.0];
    let mut previous_speedup = 0.0;
    for gb in capacities {
        let system =
            SystemConfig::reference(SsdConfig::ssd_c()).with_dram_capacity(ByteSize::from_gb(gb));
        let ms = MegisTimingModel::full().presence_breakdown(&system, &workload);
        let p = KrakenTimingModel.presence_breakdown(&system, &workload);
        let speedup = ms.speedup_over(&p);
        assert!(
            speedup >= previous_speedup * 0.95,
            "speedup should not shrink as DRAM shrinks ({gb} GB: {speedup})"
        );
        previous_speedup = previous_speedup.max(speedup);
    }
    // And the 32 GB point must be dramatically better than the 1 TB point.
    let at = |gb: f64| {
        let system =
            SystemConfig::reference(SsdConfig::ssd_c()).with_dram_capacity(ByteSize::from_gb(gb));
        MegisTimingModel::full()
            .presence_breakdown(&system, &workload)
            .speedup_over(&KrakenTimingModel.presence_breakdown(&system, &workload))
    };
    assert!(at(32.0) > 3.0 * at(1000.0));
}

#[test]
fn fig17_more_channels_only_help_isp_configurations() {
    let workload = WorkloadSpec::cami(Diversity::Medium);
    for (base, channels) in [
        (SsdConfig::ssd_c(), [4u32, 8, 16]),
        (SsdConfig::ssd_p(), [8u32, 16, 32]),
    ] {
        let mut previous_ms = f64::INFINITY;
        for ch in channels {
            let system = SystemConfig::reference(base.clone()).with_ssd_channels(ch);
            let ms = MegisTimingModel::full()
                .presence_breakdown(&system, &workload)
                .total()
                .as_secs();
            let a_opt = MetalignTimingModel::a_opt()
                .presence_breakdown(&system, &workload)
                .total()
                .as_secs();
            assert!(
                ms <= previous_ms,
                "MS must not slow down with more channels"
            );
            previous_ms = ms;
            // The external interface is unchanged, so the A-Opt baseline sees
            // no benefit from extra internal bandwidth.
            let reference_a_opt = MetalignTimingModel::a_opt()
                .presence_breakdown(&SystemConfig::reference(base.clone()), &workload)
                .total()
                .as_secs();
            assert!((a_opt - reference_a_opt).abs() < 1e-6);
        }
    }
}

#[test]
fn fig18_megis_on_cheap_system_beats_baselines_on_expensive_system() {
    let cost_system = SystemConfig::cost_optimized();
    let perf_system = SystemConfig::performance_optimized();
    for workload in WorkloadSpec::all_cami() {
        let ms_cheap = MegisTimingModel::full()
            .presence_breakdown(&cost_system, &workload)
            .total();
        let p_expensive = KrakenTimingModel
            .presence_breakdown(&perf_system, &workload)
            .total();
        let a_expensive = MetalignTimingModel::a_opt()
            .presence_breakdown(&perf_system, &workload)
            .total();
        assert!(
            ms_cheap < p_expensive && ms_cheap < a_expensive,
            "{}: MegIS on the cost-optimized system must win",
            workload.label
        );
    }
}

#[test]
fn fig19_megis_beats_pim_accelerated_baseline() {
    for ssd in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
        let system = SystemConfig::reference(ssd).with_pim_matcher(PimKmerMatcher::default());
        for workload in WorkloadSpec::all_cami() {
            let ms = MegisTimingModel::full().presence_breakdown(&system, &workload);
            let pim = PimAcceleratedKraken.presence_breakdown(&system, &workload);
            let speedup = ms.speedup_over(&pim);
            assert!(
                speedup > 1.15 && speedup < 10.0,
                "{} on {}: speedup over PIM {speedup}",
                workload.label,
                system.primary_ssd().name
            );
        }
    }
}

#[test]
fn fig20_abundance_orderings() {
    for system in systems() {
        for workload in WorkloadSpec::all_cami() {
            let ms = MegisTimingModel::full().abundance_breakdown(&system, &workload);
            let nidx = MegisTimingModel::without_in_storage_index()
                .abundance_breakdown(&system, &workload);
            let p = KrakenTimingModel.abundance_breakdown(&system, &workload);
            let a = MetalignTimingModel::a_opt().abundance_breakdown(&system, &workload);
            assert!(ms.total() < nidx.total());
            assert!(ms.total() < p.total());
            assert!(ms.total() < a.total());
        }
    }
}

#[test]
fn fig21_multi_sample_speedup_grows_with_sample_count() {
    let system = SystemConfig::reference(SsdConfig::ssd_c())
        .with_dram_capacity(ByteSize::from_gb(256.0))
        .with_sorting_accelerator(SortingAccelerator::default());
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let a_opt_single = MetalignTimingModel::a_opt().presence_breakdown(&system, &workload);
    let mut previous = 0.0;
    for samples in [1usize, 4, 8, 16] {
        let ms = MegisTimingModel::full().multi_sample_breakdown(&system, &workload, samples);
        let baseline = baseline_multi_sample(&a_opt_single, samples);
        let speedup = baseline.total() / ms.total();
        assert!(
            speedup >= previous * 0.99,
            "multi-sample speedup should grow ({samples} samples: {speedup})"
        );
        previous = previous.max(speedup);
        // The software-pipelined variant sits between the baseline and MegIS.
        let sw = software_multi_sample(&system, &workload, samples);
        assert!(sw.total() < baseline.total() || samples == 1);
        assert!(ms.total() <= sw.total());
    }
    assert!(
        previous > 5.0,
        "16-sample speedup over A-Opt should be large"
    );
}

#[test]
fn breakdown_phases_sum_to_total_everywhere() {
    let system = SystemConfig::reference(SsdConfig::ssd_p());
    let workload = WorkloadSpec::cami(Diversity::High);
    for b in [
        MegisTimingModel::full().presence_breakdown(&system, &workload),
        MegisTimingModel::full().abundance_breakdown(&system, &workload),
        KrakenTimingModel.presence_breakdown(&system, &workload),
        MetalignTimingModel::a_opt().abundance_breakdown(&system, &workload),
    ] {
        let sum: f64 = b.phases.iter().map(|p| p.duration.as_secs()).sum();
        assert!((sum - b.total().as_secs()).abs() < 1e-9, "{}", b.label);
        assert!(b.queries_per_sec(workload.reads) > 0.0);
    }
}
