//! Integration tests for the `megis-sched` pipeline tracing subsystem:
//! end-to-end stage breakdowns that telescope to the measured latency,
//! straggler analysis over the device array, the disabled-by-default
//! contract, and the shared observability lines of both report summaries.

use std::time::Duration;

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_sched::{
    BatchEngine, BatchReport, EngineConfig, JobSpec, LatencyStats, ServiceReport, ShardStats,
    StageBreakdown, StreamingEngine,
};

fn cohort(n: usize) -> (MegisAnalyzer, Vec<Sample>) {
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(100)
        .with_database_species(12);
    let reference_community = base.build(512);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    let samples = (0..n)
        .map(|i| {
            base.build_cohort_sample(512, 9000 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

#[test]
fn traced_streaming_run_reconstructs_breakdowns_and_stragglers() {
    const SAMPLES: usize = 8;
    const SHARDS: usize = 4;
    let (analyzer, samples) = cohort(SAMPLES);
    let engine = StreamingEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(SHARDS)
            .with_device_latency(Duration::from_millis(1))
            .with_step3_item_latency(Duration::from_millis(2))
            .with_tracing(),
    );
    let handles: Vec<_> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            engine
                .submit(JobSpec::new(format!("s{i}"), s.clone()))
                .expect("admission")
        })
        .collect();

    for handle in handles {
        let result = handle.wait().expect("job served");
        let breakdown = result
            .breakdown
            .expect("tracing is on, so every job carries a breakdown");
        // The breakdown's segments telescope over the traced
        // admission→delivery span, which for streaming submissions is the
        // same wall clock `latency` measures independently: the two must
        // agree to well under 1%.
        let total = breakdown.total().as_secs_f64();
        let latency = result.latency.as_secs_f64().max(1e-9);
        assert!(
            (total - latency).abs() / latency < 0.01,
            "{}: breakdown total {:.3} ms vs measured latency {:.3} ms",
            result.label,
            total * 1e3,
            latency * 1e3,
        );
        // Every job intersects on the array, so Step 2 service is nonzero;
        // the simulated per-candidate Step 3 latency makes Step 3 service
        // observable whenever the job had candidates.
        assert!(breakdown.step2_service > Duration::ZERO, "{}", result.label);
        assert!(
            breakdown.gating_device.is_some(),
            "{}: a job with step 3 commands names its gating device",
            result.label
        );
    }

    let report = engine.shutdown();
    let straggler = report
        .straggler
        .as_ref()
        .expect("straggler analysis present");
    assert_eq!(straggler.devices.len(), SHARDS);
    assert_eq!(
        straggler.gating.len(),
        SAMPLES,
        "every job's reduce was gated by some device"
    );
    assert!(straggler.step3_busy_skew() >= 1.0);
    assert_eq!(straggler.histogram.iter().sum::<u64>(), SAMPLES as u64);
    let busy_devices = straggler
        .devices
        .iter()
        .filter(|d| d.busy > Duration::ZERO)
        .count();
    assert!(busy_devices > 0, "the array did traced work");

    let trace = report.trace.as_ref().expect("event log present");
    assert!(!trace.events.is_empty());
    assert_eq!(trace.dropped, 0, "a small run fits the default ring");
    assert!(trace.to_json().contains("\"trace\""));

    let summary = report.summary();
    assert!(
        summary.contains("stage breakdown (mean): queue "),
        "{summary}"
    );
    assert!(!summary.contains("tracing disabled"), "{summary}");
}

#[test]
fn tracing_is_disabled_by_default() {
    let (analyzer, samples) = cohort(3);
    let mut engine = BatchEngine::new(analyzer, EngineConfig::new().with_workers(2).with_shards(2));
    engine
        .submit_all(
            samples
                .iter()
                .enumerate()
                .map(|(i, s)| JobSpec::new(format!("s{i}"), s.clone())),
        )
        .expect("admission");
    let report = engine.run();
    assert!(report.results.iter().all(|r| r.breakdown.is_none()));
    assert!(report.stage_breakdown.is_none());
    assert!(report.straggler.is_none());
    assert!(report.trace.is_none());
    assert!(
        report
            .summary()
            .contains("stage breakdown (mean): n/a (tracing disabled)"),
        "{}",
        report.summary()
    );
}

/// One fixture drives both renderers, so the shared observability lines —
/// residency, step 3, stage overlap, latency tail, stage breakdown —
/// cannot drift apart between batch and service summaries.
fn observability_fixture() -> (Vec<ShardStats>, LatencyStats, StageBreakdown) {
    let shard_stats = (0..3)
        .map(|shard| ShardStats {
            shard,
            busy: Duration::from_millis(40 + shard as u64 * 10),
            jobs: 5,
            query_items: 1000,
            coalesced_commands: 0,
            coalesced_members: 0,
            step3_jobs: 4,
            step3_items: 8 - shard as u64,
            stolen_items: shard as u64 * 2,
            peak_inflight: 2,
            faults: 0,
            retries: 0,
            failovers: 0,
            dead: false,
        })
        .collect();
    let latencies: Vec<Duration> = (1..=20).map(|i| Duration::from_millis(i * 5)).collect();
    let latency = LatencyStats::from_latencies(&latencies);
    let breakdown = StageBreakdown {
        queue_wait: Duration::from_millis(4),
        step1: Duration::from_millis(6),
        step2_wait: Duration::from_millis(2),
        step2_service: Duration::from_millis(9),
        step3_wait: Duration::from_millis(1),
        step3_service: Duration::from_millis(12),
        reduce_barrier: Duration::from_millis(3),
        reduce: Duration::from_millis(5),
        gating_device: Some(1),
    };
    (shard_stats, latency, breakdown)
}

#[test]
fn batch_and_service_summaries_share_the_observability_lines() {
    let (shard_stats, latency, breakdown) = observability_fixture();
    let batch = BatchReport {
        results: Vec::new(),
        failed: Vec::new(),
        wall_time: Duration::from_millis(500),
        latency,
        throughput: 8.0,
        shard_stats: shard_stats.clone(),
        resident_database_bytes: 2_000_000,
        stage_overlap_events: 17,
        modeled: None,
        stage_breakdown: Some(breakdown),
        straggler: None,
        trace: None,
    };
    let service = ServiceReport {
        completed: 20,
        uptime: Duration::from_millis(500),
        shard_stats,
        resident_database_bytes: 2_000_000,
        mapped_reads: 64,
        stage_overlap_events: 17,
        failed_jobs: 0,
        window: latency,
        stage_breakdown: Some(breakdown),
        straggler: None,
        trace: None,
    };

    for (name, summary) in [("batch", batch.summary()), ("service", service.summary())] {
        // Latency tail, including the new p90/p999 percentiles.
        assert!(summary.contains("p50 50.0 ms"), "{name}:\n{summary}");
        assert!(summary.contains("p90 90.0 ms"), "{name}:\n{summary}");
        assert!(summary.contains("p99 100.0 ms"), "{name}:\n{summary}");
        assert!(summary.contains("p999 100.0 ms"), "{name}:\n{summary}");
        // Zero-copy residency line.
        assert!(
            summary.contains("host-resident database: 2.00 MB across 3 shard views"),
            "{name}:\n{summary}"
        );
        // Step 3 and overlap lines (batch sums mapped reads over its —
        // here empty — results; the fixture's service counts 64).
        assert!(summary.contains("reads mapped"), "{name}:\n{summary}");
        assert!(
            summary.contains("per-shard candidate items: [8, 7, 6]"),
            "{name}:\n{summary}"
        );
        assert!(
            summary.contains("stage overlap events: 17"),
            "{name}:\n{summary}"
        );
        // The work-stealing line: total stolen items plus the per-device
        // split, rendered identically by both summaries.
        assert!(
            summary.contains(
                "work stealing: 6 candidate items served for peers; \
                 per-device stolen items: [0, 2, 4]"
            ),
            "{name}:\n{summary}"
        );
        // The traced stage breakdown, rendered by the shared line.
        assert!(
            summary.contains(
                "stage breakdown (mean): queue 4.0 ms | step1 6.0 ms | \
                 step2 wait 2.0 + svc 9.0 ms | step3 wait 1.0 + svc 12.0 ms | \
                 reduce barrier 3.0 + reduce 5.0 ms"
            ),
            "{name}:\n{summary}"
        );
    }
}
