//! Integration tests for the `megis-sched` batch engine: determinism across
//! worker/shard counts, scheduling-policy ordering, and agreement of the
//! modeled-time account with the analytic multi-sample models.

use megis::config::MegisConfig;
use megis::pipeline::{baseline_multi_sample, MegisTimingModel};
use megis::{MegisAnalyzer, MegisOutput};
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_host::system::SystemConfig;
use megis_sched::{
    AdmissionError, BatchEngine, EngineConfig, JobSpec, ModeledAccount, Priority, SchedPolicy,
    ShardSet,
};
use megis_ssd::config::SsdConfig;
use megis_tools::workload::WorkloadSpec;

fn cohort(n: usize) -> (MegisAnalyzer, Vec<Sample>) {
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(100)
        .with_database_species(12);
    let reference_community = base.build(512);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    // Same references (seed 512), independent read streams per sample.
    let samples = (0..n)
        .map(|i| {
            base.build_cohort_sample(512, 7000 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

fn specs(samples: &[Sample]) -> Vec<JobSpec> {
    samples
        .iter()
        .enumerate()
        .map(|(i, s)| JobSpec::new(format!("s{i}"), s.clone()))
        .collect()
}

#[test]
fn batch_results_identical_to_sequential_at_any_worker_and_shard_count() {
    // The headline determinism contract: a 16-sample batch yields
    // byte-identical presence/abundance results to sequential
    // `MegisAnalyzer::analyze` for every sample, at every worker/shard
    // combination exercised here.
    let (analyzer, samples) = cohort(16);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();

    for (workers, shards) in [(1usize, 1usize), (2, 2), (4, 4), (8, 8), (1, 8), (8, 1)] {
        let mut engine = BatchEngine::new(
            analyzer.clone(),
            EngineConfig::new()
                .with_workers(workers)
                .with_shards(shards),
        );
        engine.submit_all(specs(&samples)).unwrap();
        let report = engine.run();
        assert_eq!(report.results.len(), 16);
        for (result, expected) in report.results.iter().zip(&expected) {
            assert_eq!(
                result.output, *expected,
                "{} diverged with {workers} workers / {shards} shards",
                result.label
            );
            assert_eq!(result.output.presence, expected.presence);
            assert_eq!(result.output.abundance, expected.abundance);
        }
        // The modeled account for the batch shape upholds the paper's
        // claims: pipelined strictly below independent runs, and
        // intersection scaling within 90% of linear in the shard count.
        let modeled = report
            .modeled
            .as_ref()
            .expect("non-empty batch has an account");
        assert!(
            modeled.pipelined_total() < modeled.independent_total(),
            "pipelined model must beat independent runs"
        );
        assert!(modeled.is_consistent(0.9));
    }
}

#[test]
fn batch_results_identical_across_queue_depths() {
    // Queue depth changes only how many commands dwell on each simulated
    // SSD, never what is computed: every worker/shard/depth combination
    // must reproduce the sequential analyzer byte for byte, including a
    // configuration with simulated command latencies.
    let (analyzer, samples) = cohort(8);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();

    for (workers, shards, depth) in [
        (1usize, 1usize, 1usize),
        (2, 2, 1),
        (2, 4, 2),
        (4, 2, 4),
        (2, 3, 8),
    ] {
        let mut engine = BatchEngine::new(
            analyzer.clone(),
            EngineConfig::new()
                .with_workers(workers)
                .with_shards(shards)
                .with_queue_depth(depth)
                .with_command_latencies(
                    std::time::Duration::from_micros(50),
                    std::time::Duration::from_micros(50),
                ),
        );
        engine.submit_all(specs(&samples)).unwrap();
        let report = engine.run();
        assert_eq!(report.results.len(), 8);
        for (result, expected) in report.results.iter().zip(&expected) {
            assert_eq!(
                result.output, *expected,
                "{} diverged at {workers} workers / {shards} shards / depth {depth}",
                result.label
            );
        }
        for stats in &report.shard_stats {
            assert!(
                stats.peak_inflight <= depth,
                "shard {} exceeded depth {depth}: {}",
                stats.shard,
                stats.peak_inflight
            );
        }
    }
}

#[test]
fn zero_copy_shard_views_share_one_storage_and_stay_byte_identical() {
    // The shards are range views over the analyzer database's columnar
    // storage: building a shard set at any count must keep exactly one
    // resident copy of the database (not the 2x a deep-copy partition held
    // next to the analyzer's own copy), and the engine's results through
    // those views must stay byte-identical to the sequential analyzer for
    // every worker/shard/depth combination.
    let (analyzer, samples) = cohort(8);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();
    let one_copy = analyzer.database().storage().heap_bytes();
    assert!(one_copy > 0);

    for shards in [1usize, 2, 4, 8, 17] {
        let set = ShardSet::build(analyzer.database(), shards);
        assert_eq!(
            set.resident_bytes(),
            one_copy,
            "{shards} shards must not duplicate the database"
        );
        for shard in set.shards() {
            assert!(
                shard.shares_storage_with(analyzer.database()),
                "every shard must view the analyzer's storage"
            );
        }
        // The logical on-device bytes still cover the whole database.
        assert_eq!(
            set.shard_bytes().iter().sum::<u64>(),
            analyzer.database().encoded_bytes()
        );
    }

    for (workers, shards, depth) in [(1usize, 2usize, 2usize), (2, 4, 1), (4, 8, 4), (2, 3, 8)] {
        let mut engine = BatchEngine::new(
            analyzer.clone(),
            EngineConfig::new()
                .with_workers(workers)
                .with_shards(shards)
                .with_queue_depth(depth),
        );
        engine.submit_all(specs(&samples)).unwrap();
        let report = engine.run();
        assert_eq!(
            report.resident_database_bytes, one_copy,
            "engine at {workers}w/{shards}s/qd{depth} must hold one database copy"
        );
        assert_eq!(report.results.len(), 8);
        for (result, expected) in report.results.iter().zip(&expected) {
            assert_eq!(
                result.output, *expected,
                "{} diverged through zero-copy views at {workers}w/{shards}s/qd{depth}",
                result.label
            );
        }
    }
}

#[test]
fn sharded_step3_accounts_every_candidate_once_and_stays_byte_identical() {
    // Step 3 runs as per-device commands through the same queues as the
    // intersections: across a worker/shard/depth matrix, every job's
    // candidate species must be merged on exactly one device (the per-job
    // sum of per-shard step3 items equals the job's candidate count), the
    // mapped-read totals must surface in the report, and every output must
    // stay byte-identical to the sequential analyzer.
    let (analyzer, samples) = cohort(8);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();
    let expected_candidates: u64 = expected.iter().map(|e| e.presence.len() as u64).sum();
    let expected_mapped: u64 = expected.iter().map(|e| e.mapped_reads).sum();
    assert!(expected_mapped > 0, "fixture must exercise read mapping");

    for (workers, shards, depth) in [(1usize, 1usize, 1usize), (2, 4, 2), (4, 2, 4), (2, 8, 8)] {
        let mut engine = BatchEngine::new(
            analyzer.clone(),
            EngineConfig::new()
                .with_workers(workers)
                .with_shards(shards)
                .with_queue_depth(depth),
        );
        engine.submit_all(specs(&samples)).unwrap();
        let report = engine.run();
        for (result, expected) in report.results.iter().zip(&expected) {
            assert_eq!(
                result.output, *expected,
                "{} diverged at {workers}w/{shards}s/qd{depth}",
                result.label
            );
        }
        assert_eq!(
            report.mapped_reads(),
            expected_mapped,
            "mapped-read total at {workers}w/{shards}s/qd{depth}"
        );
        let step3_items: u64 = report.shard_stats.iter().map(|s| s.step3_items).sum();
        assert_eq!(
            step3_items, expected_candidates,
            "each candidate merged on exactly one device at {workers}w/{shards}s/qd{depth}"
        );
        let step3_jobs: u64 = report.shard_stats.iter().map(|s| s.step3_jobs).sum();
        assert!(
            step3_jobs >= samples.len() as u64,
            "every job ran step 3 on some device"
        );
        // With work stealing an idle device may serve commands issued to a
        // peer, so its served count is bounded by the total that can be
        // issued (one command per job per device at most), not by the job
        // count — and every command is still served exactly once.
        let issued_bound = samples.len() as u64 * shards as u64;
        for stats in &report.shard_stats {
            assert!(
                stats.step3_jobs <= issued_bound,
                "device {} served {} step-3 commands, issue bound {issued_bound}",
                stats.shard,
                stats.step3_jobs
            );
            assert!(
                stats.stolen_items <= stats.step3_items,
                "stolen items are a subset of served items"
            );
        }
        let summary = report.summary();
        assert!(summary.contains("reads mapped"));
        assert!(summary.contains("stage overlap events"));
    }
}

#[test]
fn more_shards_than_database_entries_stays_correct() {
    // `SortedKmerDatabase::partition` pads with empty trailing shards when
    // parts > len; those dead shards must never be commanded (0 jobs), must
    // not corrupt results, and must not turn utilization reporting into
    // NaN/Inf nonsense.
    let base = CommunityConfig::preset(Diversity::Low)
        .with_species(2)
        .with_database_species(2)
        .with_reads(30)
        .with_genome_len(40);
    let community = base.build(99);
    let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
    let entries = analyzer.database().len();
    let shards = entries + 8;
    assert!(entries > 0, "tiny community still indexes something");

    let expected = analyzer.analyze(community.sample());
    let mut engine = BatchEngine::new(
        analyzer,
        EngineConfig::new().with_workers(2).with_shards(shards),
    );
    engine
        .submit_all((0..3).map(|i| JobSpec::new(format!("s{i}"), community.sample().clone())))
        .unwrap();
    let report = engine.run();
    assert_eq!(report.results.len(), 3);
    for result in &report.results {
        assert_eq!(result.output, expected, "{} diverged", result.label);
    }
    assert_eq!(report.shard_stats.len(), shards);
    // Entry-holding shards serve every job's intersection; entry-less
    // padding shards are never *intersect*-commanded (their key range is
    // empty). They may still serve Step 3: cost-aware candidate
    // partitioning places parts by cumulative cost over the whole device
    // array — Step 3 resolves candidates against the analyzer's memoized
    // indexes, not the shard's database range — and work stealing can move
    // that Step 3 work to any idle device. So `busy` is only pinned to
    // zero for shards that served neither command kind.
    for stats in &report.shard_stats {
        if stats.shard < entries {
            assert_eq!(stats.jobs, 3, "shard {} holds entries", stats.shard);
        } else {
            assert_eq!(stats.jobs, 0, "shard {} is padding", stats.shard);
            assert_eq!(stats.query_items, 0);
            if stats.step3_jobs == 0 {
                assert_eq!(stats.busy, std::time::Duration::ZERO);
            }
        }
    }
    let utilization = report.shard_utilization();
    assert_eq!(utilization.len(), shards);
    for (shard, util) in utilization.iter().enumerate() {
        assert!(
            util.is_finite() && *util >= 0.0,
            "shard {shard} utilization is nonsense: {util}"
        );
    }
    assert!(!report.summary().is_empty());
}

#[test]
fn fifo_and_priority_policies_order_service_differently() {
    let (analyzer, samples) = cohort(6);
    let build_jobs = || {
        let mut jobs = specs(&samples);
        jobs[3] = jobs[3].clone().with_priority(Priority::High);
        jobs[5] = jobs[5].clone().with_priority(Priority::High);
        jobs[0] = jobs[0].clone().with_priority(Priority::Low);
        jobs
    };

    let mut fifo = BatchEngine::new(
        analyzer.clone(),
        EngineConfig::new()
            .with_workers(1)
            .with_policy(SchedPolicy::Fifo),
    );
    fifo.submit_all(build_jobs()).unwrap();
    let fifo_run = fifo.run();
    let fifo_order: Vec<usize> = fifo_run.results.iter().map(|r| r.start_position).collect();
    assert_eq!(
        fifo_order,
        [0, 1, 2, 3, 4, 5],
        "FIFO serves submission order"
    );

    let mut prio = BatchEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(1)
            .with_policy(SchedPolicy::Priority),
    );
    prio.submit_all(build_jobs()).unwrap();
    let prio_run = prio.run();
    let pos = |id: u64| {
        prio_run
            .results
            .iter()
            .find(|r| r.id.0 == id)
            .unwrap()
            .start_position
    };
    // High before normal before low; ties by submission order.
    assert_eq!(pos(3), 0);
    assert_eq!(pos(5), 1);
    assert_eq!(pos(1), 2);
    assert_eq!(pos(0), 5, "low priority runs last");
    // Policies change order only — outputs stay identical.
    for (a, b) in fifo_run.results.iter().zip(&prio_run.results) {
        assert_eq!(a.output, b.output);
    }
}

#[test]
fn modeled_account_tracks_analytic_multi_sample_models() {
    // The engine's modeled account must agree with the pipeline module's
    // analytic models evaluated directly.
    let system = SystemConfig::reference(SsdConfig::ssd_c());
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let acct = ModeledAccount::compute(&system, &workload, 16, 1);

    let single = MegisTimingModel::full().presence_breakdown(&system, &workload);
    let independent = baseline_multi_sample(&single, 16);
    let pipelined = MegisTimingModel::full().multi_sample_breakdown(&system, &workload, 16);
    assert_eq!(
        acct.independent_total().as_secs(),
        independent.total().as_secs()
    );
    assert_eq!(
        acct.pipelined_total().as_secs(),
        pipelined.total().as_secs()
    );
    assert!(acct.pipelining_speedup() > 1.0);
}

#[test]
fn modeled_shard_scaling_is_near_linear_to_eight() {
    let system = SystemConfig::reference(SsdConfig::ssd_c()).with_ssd_count(8);
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let acct = ModeledAccount::compute(&system, &workload, 4, 8);
    for (count, speedup) in &acct.shard_speedups {
        assert!(
            *speedup >= 0.9 * *count as f64,
            "{count} shards reach only {speedup:.2}x"
        );
    }
}

#[test]
fn admitted_jobs_still_run_after_mid_batch_rejection() {
    // PartialAdmission is not "nothing was submitted": the jobs admitted
    // before the rejection stay queued, run to completion, and their
    // results stay byte-identical to the sequential analyzer.
    let (analyzer, samples) = cohort(6);
    let expected: Vec<MegisOutput> = samples.iter().map(|s| analyzer.analyze(s)).collect();
    let mut engine = BatchEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(2)
            .with_shards(2)
            .with_queue_capacity(4),
    );
    let err = engine.submit_all(specs(&samples)).unwrap_err();
    assert_eq!(err.error, AdmissionError::QueueFull { capacity: 4 });
    assert_eq!(err.admitted.len(), 4, "four jobs got in before the wall");
    assert_eq!(engine.pending(), 4);

    let report = engine.run();
    assert_eq!(report.results.len(), 4);
    for (result, expected) in report.results.iter().zip(&expected) {
        assert_eq!(
            result.output, *expected,
            "{} diverged after partial admission",
            result.label
        );
    }
    // The rejection was transient: the drained queue admits again.
    engine
        .submit(JobSpec::new("retry", samples[4].clone()))
        .expect("capacity freed by the run");
    let retry = engine.run();
    assert_eq!(retry.results.len(), 1);
    assert_eq!(retry.results[0].output, expected[4]);
}

#[test]
fn per_job_metrics_are_populated() {
    let (analyzer, samples) = cohort(4);
    let mut engine = BatchEngine::new(analyzer, EngineConfig::new().with_workers(2).with_shards(2));
    engine.submit_all(specs(&samples)).unwrap();
    let report = engine.run();
    assert!(report.wall_time.as_nanos() > 0);
    assert!(report.throughput > 0.0);
    assert_eq!(report.latency.count, 4);
    assert!(report.latency.p99 >= report.latency.p50);
    for result in &report.results {
        assert!(result.latency >= result.step1_time);
        assert!(result.latency >= result.isp_time);
        assert!(result.output.selected_kmers > 0);
    }
    for stats in &report.shard_stats {
        assert_eq!(stats.jobs, 4, "every shard serves every job");
    }
}
