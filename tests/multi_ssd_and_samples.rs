//! Integration tests for database partitioning across SSDs (Fig. 15) and the
//! multi-sample pipeline (§4.7 / Fig. 21), including energy ordering (§6.5).

use megis::config::MegisConfig;
use megis::energy::EnergyModel;
use megis::pipeline::{baseline_multi_sample, MegisTimingModel};
use megis::MegisAnalyzer;
use megis_genomics::database::SortedKmerDatabase;
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_host::accelerators::{PimKmerMatcher, SortingAccelerator};
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::kraken::KrakenTimingModel;
use megis_tools::metalign::MetalignTimingModel;
use megis_tools::pim::PimAcceleratedKraken;
use megis_tools::workload::WorkloadSpec;

#[test]
fn database_partition_across_ssds_preserves_results() {
    // Because the database is sorted, it can be split disjointly across SSDs;
    // the union of per-shard intersections equals the single-device result.
    let community = CommunityConfig::preset(Diversity::Medium)
        .with_reads(250)
        .with_database_species(16)
        .build(71);
    let config = MegisConfig::small();
    let analyzer = MegisAnalyzer::build(community.references(), config);
    let database = analyzer.database();

    let queries = {
        let step1 = megis::step1::run(
            community.sample().reads(),
            &config,
            megis_tools::kmc::ExclusionPolicy::default(),
        );
        step1.sorted_kmers()
    };
    let whole = database.intersect_sorted(&queries);

    for shards in [2usize, 4, 8] {
        let mut combined = Vec::new();
        for shard in database.partition(shards) {
            combined.extend(shard.intersect_sorted(&queries));
        }
        combined.sort();
        combined.dedup();
        assert_eq!(combined, whole, "{shards}-way partition changed the result");
    }
}

#[test]
fn partition_shards_are_usable_as_independent_databases() {
    let refs = megis_genomics::reference::ReferenceCollection::synthetic(8, 600, 3);
    let db = SortedKmerDatabase::build(&refs, 21);
    let shards = db.partition(4);
    let total: u64 = shards.iter().map(|s| s.encoded_bytes()).sum();
    assert!(total >= db.encoded_bytes());
    for shard in &shards {
        assert!(shard.is_sorted());
    }
}

#[test]
fn multi_ssd_speedup_scales_then_saturates_on_sorting() {
    // Fig. 15: speedup over P-Opt rises up to ~2 SSDs and stays high at 8,
    // by which point host-side sorting limits MegIS.
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let speedup_at = |count: usize| {
        let system = SystemConfig::reference(SsdConfig::ssd_c()).with_ssd_count(count);
        let ms = MegisTimingModel::full().presence_breakdown(&system, &workload);
        let p = KrakenTimingModel.presence_breakdown(&system, &workload);
        ms.speedup_over(&p)
    };
    let s1 = speedup_at(1);
    let s2 = speedup_at(2);
    let s8 = speedup_at(8);
    assert!(s2 >= s1 * 0.9, "two SSDs should not hurt ({s1} → {s2})");
    assert!(
        s8 > 3.0,
        "speedup must stay large with eight SSDs, got {s8}"
    );
}

#[test]
fn multi_sample_use_case_reaches_large_speedups() {
    // Fig. 21: with 256 GB of DRAM and a sorting accelerator, MegIS reaches
    // tens-of-× speedups over the baselines for 16 samples.
    let system = SystemConfig::reference(SsdConfig::ssd_c())
        .with_dram_capacity(ByteSize::from_gb(256.0))
        .with_sorting_accelerator(SortingAccelerator::default());
    let workload = WorkloadSpec::cami(Diversity::Medium);

    let ms = MegisTimingModel::full().multi_sample_breakdown(&system, &workload, 16);
    let p_single = KrakenTimingModel.presence_breakdown(&system, &workload);
    let a_single = MetalignTimingModel::a_opt().presence_breakdown(&system, &workload);
    let p_16 = baseline_multi_sample(&p_single, 16);
    let a_16 = baseline_multi_sample(&a_single, 16);

    let vs_p = p_16.total() / ms.total();
    let vs_a = a_16.total() / ms.total();
    assert!(vs_p > 8.0, "speedup over P-Opt for 16 samples: {vs_p}");
    assert!(vs_a > 20.0, "speedup over A-Opt for 16 samples: {vs_a}");
}

#[test]
fn energy_ordering_matches_section_6_5() {
    // §6.5: MegIS reduces energy by 5.4× / 15.2× / 1.9× on average versus
    // P-Opt, A-Opt, and the Sieve-accelerated P-Opt. MegIS must beat both
    // software baselines on every system; versus the PIM baseline the
    // advantage is an average (the PIM baseline is closest on SSD-P, where
    // its database load is short).
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let mut pim_reductions = Vec::new();
    for ssd in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
        let system = SystemConfig::reference(ssd).with_pim_matcher(PimKmerMatcher::default());

        let ms_b = MegisTimingModel::full().presence_breakdown(&system, &workload);
        let p_b = KrakenTimingModel.presence_breakdown(&system, &workload);
        let a_b = MetalignTimingModel::a_opt().presence_breakdown(&system, &workload);
        let pim_b = PimAcceleratedKraken.presence_breakdown(&system, &workload);

        let ms = EnergyModel::megis().report(&ms_b, &system).total();
        let p = EnergyModel::baseline().report(&p_b, &system).total();
        let a = EnergyModel::baseline().report(&a_b, &system).total();
        let pim = EnergyModel::baseline().report(&pim_b, &system).total();

        assert!(ms < p && ms < a, "MegIS must beat both software baselines");
        assert!(
            a > p,
            "the accuracy-optimized baseline costs the most energy"
        );
        let reduction_vs_p = p / ms;
        let reduction_vs_a = a / ms;
        assert!(reduction_vs_p > 2.0, "vs P-Opt: {reduction_vs_p}");
        assert!(reduction_vs_a > 5.0, "vs A-Opt: {reduction_vs_a}");
        pim_reductions.push(pim / ms);
    }
    let geomean = megis_tools::timing::geometric_mean(&pim_reductions);
    assert!(
        geomean > 1.3,
        "average energy reduction vs the PIM baseline should be substantial, got {geomean}"
    );
    assert!(
        pim_reductions[0] > 2.0,
        "on SSD-C the PIM baseline's long database load must cost far more energy"
    );
}

#[test]
fn io_data_movement_reduction_is_large() {
    // §6.5: MegIS moves ~72× less data over the host interface than A-Opt and
    // ~30× less than P-Opt.
    let system = SystemConfig::reference(SsdConfig::ssd_c());
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let ms = MegisTimingModel::full().presence_breakdown(&system, &workload);
    let p = KrakenTimingModel.presence_breakdown(&system, &workload);
    let a = MetalignTimingModel::a_opt().presence_breakdown(&system, &workload);
    let vs_a = a.external_io.as_bytes() as f64 / ms.external_io.as_bytes() as f64;
    let vs_p = p.external_io.as_bytes() as f64 / ms.external_io.as_bytes() as f64;
    assert!(vs_a > 40.0, "I/O reduction vs A-Opt: {vs_a}");
    assert!(vs_p > 15.0, "I/O reduction vs P-Opt: {vs_p}");
}
