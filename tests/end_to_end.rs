//! End-to-end integration tests: synthetic community → MegIS functional
//! pipeline → presence/abundance, across diversity presets.

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::metrics::{AbundanceError, ClassificationMetrics};
use megis_genomics::sample::{CommunityConfig, Diversity};

fn run_preset(
    diversity: Diversity,
    seed: u64,
) -> (megis_genomics::sample::Community, megis::MegisOutput) {
    let community = CommunityConfig::preset(diversity)
        .with_reads(400)
        .with_database_species(24)
        .build(seed);
    let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
    let output = analyzer.analyze(community.sample());
    (community, output)
}

#[test]
fn low_diversity_sample_is_recovered_accurately() {
    let (community, output) = run_preset(Diversity::Low, 11);
    let metrics = ClassificationMetrics::score(&output.presence, &community.truth_presence());
    assert!(metrics.recall() > 0.9, "recall {}", metrics.recall());
    assert!(metrics.f1() > 0.7, "f1 {}", metrics.f1());
}

#[test]
fn medium_diversity_sample_is_recovered_accurately() {
    let (community, output) = run_preset(Diversity::Medium, 12);
    let metrics = ClassificationMetrics::score(&output.presence, &community.truth_presence());
    assert!(metrics.recall() > 0.85, "recall {}", metrics.recall());
    assert!(metrics.f1() > 0.65, "f1 {}", metrics.f1());
}

#[test]
fn high_diversity_sample_is_recovered_accurately() {
    let (community, output) = run_preset(Diversity::High, 13);
    let metrics = ClassificationMetrics::score(&output.presence, &community.truth_presence());
    assert!(metrics.recall() > 0.7, "recall {}", metrics.recall());
    assert!(
        metrics.precision() > 0.5,
        "precision {}",
        metrics.precision()
    );
}

#[test]
fn abundance_profile_is_close_to_ground_truth() {
    let (community, output) = run_preset(Diversity::Low, 21);
    assert!(!output.abundance.is_empty());
    let err = AbundanceError::score(&output.abundance, community.truth_profile());
    assert!(err.l1_norm < 0.7, "L1 error {}", err.l1_norm);
    // The dominant species must be ranked first in both profiles.
    let truth_top = community
        .truth_profile()
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0;
    let predicted_top = output
        .abundance
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(truth_top, predicted_top);
}

#[test]
fn analysis_is_deterministic_for_a_given_community() {
    let community = CommunityConfig::preset(Diversity::Medium)
        .with_reads(200)
        .with_database_species(16)
        .build(99);
    let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
    let a = analyzer.analyze(community.sample());
    let b = analyzer.analyze(community.sample());
    assert_eq!(a.presence, b.presence);
    assert_eq!(a.intersecting_kmers, b.intersecting_kmers);
    assert_eq!(a.abundance, b.abundance);
}

#[test]
fn empty_sample_produces_empty_results() {
    let community = CommunityConfig::preset(Diversity::Low)
        .with_reads(1)
        .with_database_species(8)
        .build(5);
    let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
    let empty = megis_genomics::sample::Sample::default();
    let output = analyzer.analyze(&empty);
    assert!(output.presence.is_empty());
    assert!(output.abundance.is_empty());
    assert_eq!(output.intersecting_kmers, 0);
}
