//! Multi-sample cohort study: many read sets against one database (§4.7).
//!
//! Studies such as global antimicrobial-resistance tracing or gut-microbiome
//! cohort analyses re-analyze many samples against the same reference
//! database. MegIS buffers the k-mers of as many samples as fit in host DRAM
//! and streams the database once per group, so the dominant cost is amortized
//! across the cohort (Fig. 21).
//!
//! This example analyzes a small synthetic cohort functionally (per-sample
//! profiles from one shared set of databases), then reports the paper-scale
//! cohort turnaround for 1–16 samples.
//!
//! Run with: `cargo run -p megis-examples --bin multi_sample_study`

use megis::config::MegisConfig;
use megis::pipeline::{baseline_multi_sample, MegisTimingModel};
use megis::MegisAnalyzer;
use megis_examples::format_profile;
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_host::accelerators::SortingAccelerator;
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::workload::WorkloadSpec;
use megis_tools::{KrakenTimingModel, MetalignTimingModel};

fn main() {
    println!("Multi-sample cohort study");
    println!("=========================\n");

    // One shared reference collection and database; several patient samples
    // drawn from it with different compositions (different seeds).
    let cohort_seeds = [11u64, 22, 33, 44];
    let reference_community = CommunityConfig::preset(Diversity::Medium)
        .with_reads(300)
        .with_database_species(24)
        .build(cohort_seeds[0]);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());

    println!(
        "functional per-sample profiles (shared databases, {} species indexed):\n",
        reference_community.references().species().len()
    );
    for (i, seed) in cohort_seeds.iter().enumerate() {
        let sample_community = CommunityConfig::preset(Diversity::Medium)
            .with_reads(300)
            .with_database_species(24)
            .build(*seed);
        let result = analyzer.analyze(sample_community.sample());
        println!(
            "sample {} — {} species present, {} reads mapped",
            i + 1,
            result.presence.len(),
            result.mapped_reads
        );
        println!(
            "{}\n",
            format_profile(
                &result.abundance,
                reference_community.references().taxonomy()
            )
        );
    }

    // Paper-scale cohort turnaround (Fig. 21 configuration).
    println!("paper-scale cohort turnaround (SSD-C, 256 GB DRAM, sorting accelerator):\n");
    let system = SystemConfig::reference(SsdConfig::ssd_c())
        .with_dram_capacity(ByteSize::from_gb(256.0))
        .with_sorting_accelerator(SortingAccelerator::default());
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let p_single = KrakenTimingModel.presence_breakdown(&system, &workload);
    let a_single = MetalignTimingModel::a_opt().presence_breakdown(&system, &workload);

    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "samples", "P-Opt (h)", "A-Opt (h)", "MegIS (h)", "vs P-Opt", "vs A-Opt"
    );
    for samples in [1usize, 4, 8, 16] {
        let ms = MegisTimingModel::full().multi_sample_breakdown(&system, &workload, samples);
        let p = baseline_multi_sample(&p_single, samples);
        let a = baseline_multi_sample(&a_single, samples);
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>14.2} {:>11.1}x {:>11.1}x",
            samples,
            p.total().as_secs() / 3600.0,
            a.total().as_secs() / 3600.0,
            ms.total().as_secs() / 3600.0,
            p.total() / ms.total(),
            a.total() / ms.total()
        );
    }
    println!("\nThe database is streamed once per buffered group of samples, so the cohort");
    println!("cost approaches one database pass plus per-sample host work (paper: up to");
    println!("37.2x / 100.2x speedup over P-Opt / A-Opt for 16 samples).");
}
