//! A many-client batch analysis service built on `megis-sched`.
//!
//! Simulates a sequencing facility where many clients — routine cohort
//! studies and time-critical clinical cases — submit samples against one
//! shared reference database. The batch engine admits jobs under a priority
//! policy, runs host-side Step 1 on a worker pool, shards intersection
//! finding across four simulated SSDs, and overlaps the stages exactly as
//! §4.7 of the paper prescribes. Every result is byte-identical to running
//! `MegisAnalyzer::analyze` per sample.
//!
//! Run with: `cargo run -p megis-examples --bin batch_service`

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_sched::{BatchEngine, EngineConfig, JobSpec, Priority, SchedPolicy};

fn main() {
    println!("MegIS batch analysis service");
    println!("============================\n");

    // One shared reference database for the whole service.
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(150)
        .with_database_species(16);
    let reference_community = base.build(7);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());

    let mut engine = BatchEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(4)
            .with_shards(4)
            .with_policy(SchedPolicy::Priority)
            .with_queue_capacity(64),
    );
    println!(
        "engine: {} step-1 workers, {} database shards ({} entries total), {} policy\n",
        engine.config().workers,
        engine.shards().shard_count(),
        engine.shards().total_entries(),
        engine.config().policy.label(),
    );

    // Many clients submit: 20 cohort samples, 3 stat clinical cases, and a
    // background re-analysis sweep.
    for i in 0..20 {
        let sample = base.build_cohort_sample(7, 1000 + i).sample().clone();
        engine
            .submit(JobSpec::new(format!("cohort/{i:02}"), sample))
            .expect("admission");
    }
    for i in 0..3 {
        let sample = base.build_cohort_sample(7, 2000 + i).sample().clone();
        engine
            .submit(
                JobSpec::new(format!("clinical/STAT-{i}"), sample).with_priority(Priority::High),
            )
            .expect("admission");
    }
    let sweep = base.build_cohort_sample(7, 3000).sample().clone();
    engine
        .submit(JobSpec::new("background/resweep", sweep).with_priority(Priority::Low))
        .expect("admission");

    println!(
        "submitted {} jobs; running the batch...\n",
        engine.pending()
    );
    let report = engine.run();

    println!(
        "{:<22} {:>8} {:>7} {:>10} {:>10} {:>8}",
        "job", "priority", "order", "wait ms", "lat ms", "species"
    );
    let mut by_start: Vec<_> = report.results.iter().collect();
    by_start.sort_by_key(|r| r.start_position);
    for r in by_start {
        println!(
            "{:<22} {:>8} {:>7} {:>10.1} {:>10.1} {:>8}",
            r.label,
            r.priority.label(),
            r.start_position,
            r.queue_wait.as_secs_f64() * 1e3,
            r.latency.as_secs_f64() * 1e3,
            r.output.presence.len(),
        );
    }

    println!("\n{}", report.summary());
    let modeled = report
        .modeled
        .as_ref()
        .expect("non-empty batch has an account");
    let speedups: Vec<String> = modeled
        .shard_speedups
        .iter()
        .map(|(n, s)| format!("{n} SSD: {s:.2}x"))
        .collect();
    println!("modeled intersection scaling: {}", speedups.join(", "));
    println!("\nHigh-priority clinical samples entered service first; all outputs are");
    println!("byte-identical to per-sample sequential analysis.");
}
