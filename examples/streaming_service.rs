//! A long-running streaming analysis service built on `megis-sched`.
//!
//! Where `batch_service` drains one closed batch, this example runs the
//! engine in service mode: four client threads submit samples *while the
//! engine is running* — routine cohort work, a background re-analysis
//! sweep, and a burst of time-critical clinical cases arriving mid-stream.
//! The live `pop_next` dispatch lets the clinical samples overtake
//! everything still queued, the reorder buffer keeps the in-SSD stage in
//! policy order, results are delivered incrementally on per-job handles,
//! and the rolling metrics window reports recent p50/p99 while the service
//! is up. The in-SSD stage runs NVMe-style per-shard command queues (depth
//! 4 here, with a simulated per-command device service time), so several
//! samples' intersections are in flight on every shard at once — the final
//! per-shard report shows the peak queue occupancy each device reached.
//! Pipeline tracing is enabled, so the shutdown report carries each job's
//! stage-latency breakdown and the straggler analysis of the device array.
//! The run ends with a graceful drain and shutdown.
//!
//! Run with: `cargo run -p megis-examples --bin streaming_service`

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_sched::{EngineConfig, JobHandle, JobSpec, Priority, SchedPolicy, StreamingEngine};

fn main() {
    println!("MegIS streaming analysis service");
    println!("================================\n");

    // One shared reference database for the whole service.
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(150)
        .with_database_species(16);
    let reference_community = base.build(7);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());

    let engine = Arc::new(StreamingEngine::new(
        analyzer,
        EngineConfig::new()
            .with_workers(4)
            .with_shards(4)
            .with_policy(SchedPolicy::Priority)
            .with_queue_capacity(64)
            .with_queue_depth(4)
            .with_device_latency(Duration::from_millis(1))
            .with_metrics_window(16)
            .with_tracing(),
    ));
    println!(
        "service up: {} step-1 workers, {} database shards ({} entries), {} policy, \
         per-shard command queue depth {}\n",
        engine.config().workers,
        engine.shards().shard_count(),
        engine.shards().total_entries(),
        engine.config().policy.label(),
        engine.config().queue_depth,
    );

    // Client threads submit while the engine runs; handles flow back to the
    // main thread, which consumes results as they complete.
    let (handle_tx, handle_rx) = mpsc::channel::<(String, JobHandle)>();
    thread::scope(|scope| {
        // Two cohort clients.
        for client in 0..2u64 {
            let engine = Arc::clone(&engine);
            let handle_tx = handle_tx.clone();
            let base = base.clone();
            scope.spawn(move || {
                for i in 0..6u64 {
                    let label = format!("cohort-{client}/{i:02}");
                    let sample = base.build_cohort_sample(7, 1000 + client * 100 + i);
                    let handle = engine
                        .submit(JobSpec::new(label.clone(), sample.sample().clone()))
                        .expect("admission");
                    handle_tx.send((label, handle)).unwrap();
                    thread::sleep(Duration::from_millis(2));
                }
            });
        }
        // A background sweep at low priority.
        {
            let engine = Arc::clone(&engine);
            let handle_tx = handle_tx.clone();
            let base = base.clone();
            scope.spawn(move || {
                for i in 0..3u64 {
                    let label = format!("background/resweep-{i}");
                    let sample = base.build_cohort_sample(7, 3000 + i);
                    let handle = engine
                        .submit(
                            JobSpec::new(label.clone(), sample.sample().clone())
                                .with_priority(Priority::Low),
                        )
                        .expect("admission");
                    handle_tx.send((label, handle)).unwrap();
                }
            });
        }
        // A clinical client whose stat cases arrive mid-stream.
        {
            let engine = Arc::clone(&engine);
            let handle_tx = handle_tx.clone();
            let base = base.clone();
            scope.spawn(move || {
                thread::sleep(Duration::from_millis(5));
                for i in 0..3u64 {
                    let label = format!("clinical/STAT-{i}");
                    let sample = base.build_cohort_sample(7, 2000 + i);
                    let handle = engine
                        .submit(
                            JobSpec::new(label.clone(), sample.sample().clone())
                                .with_priority(Priority::High),
                        )
                        .expect("admission");
                    handle_tx.send((label, handle)).unwrap();
                }
            });
        }
        drop(handle_tx);

        // Consume results incrementally, in submission-arrival order.
        println!(
            "{:<24} {:>8} {:>6} {:>6} {:>10} {:>8}",
            "job", "priority", "disp", "isp", "lat ms", "species"
        );
        for (label, handle) in handle_rx {
            let result = handle.wait().expect("job served");
            println!(
                "{:<24} {:>8} {:>6} {:>6} {:>10.1} {:>8}",
                label,
                result.priority.label(),
                result.start_position,
                result.isp_position,
                result.latency.as_secs_f64() * 1e3,
                result.output.presence.len(),
            );
        }
    });

    let snap = engine.snapshot();
    println!(
        "\nlive snapshot: {} completed; rolling window of {} — p50 {:.1} ms, p99 {:.1} ms, {:.1} samples/s",
        snap.completed,
        snap.window.count,
        snap.window.p50.as_secs_f64() * 1e3,
        snap.window.p99.as_secs_f64() * 1e3,
        snap.window_throughput,
    );

    let engine = Arc::try_unwrap(engine).expect("all clients finished");
    let report = engine.shutdown();
    println!(
        "graceful shutdown after {:.3} s: {} jobs served",
        report.uptime.as_secs_f64(),
        report.completed,
    );
    let jobs: Vec<String> = report
        .shard_stats
        .iter()
        .map(|s| {
            format!(
                "shard {}: {} isect + {} step3 cmds, {} query k-mers, peak QD {}",
                s.shard, s.jobs, s.step3_jobs, s.query_items, s.peak_inflight
            )
        })
        .collect();
    println!("per-shard service counts: [{}]", jobs.join(", "));
    println!(
        "step 3 on the device array: {} reads mapped; {} stage-overlap events \
         (a step-3 or intersect submission saw the other stage outstanding)",
        report.mapped_reads, report.stage_overlap_events,
    );
    if let Some(breakdown) = &report.stage_breakdown {
        println!(
            "stage breakdown (mean over {} jobs): {}",
            report.completed,
            breakdown.summary_line()
        );
    }
    if let Some(straggler) = &report.straggler {
        print!("\n{}", straggler.report());
    }
    println!("\nClinical samples submitted mid-stream overtook the queued cohort work");
    println!("(disp = dispatch position), and the in-SSD stage served samples exactly");
    println!("in dispatch order (isp = disp), even with 4 racing Step 1 workers.");
    println!("Each shard saw only its key-range slice of every sample's queries, and");
    println!("a peak QD above 1 means several samples' intersections were genuinely in");
    println!("flight on that device at once (NVMe-style bounded command queues).");
}
