//! Shared helpers for the MegIS example applications.
//!
//! The runnable examples live next to this file:
//!
//! * `quickstart` — build a synthetic community, analyze it with MegIS, and
//!   print presence/abundance plus the paper-scale performance estimate,
//! * `clinical_pathogen_id` — a time-critical clinical scenario comparing the
//!   tools' turnaround times and accuracy for pathogen detection,
//! * `multi_sample_study` — a multi-sample cohort study sharing one database
//!   (the use case of §4.7 / Fig. 21),
//! * `cost_efficiency_sweep` — system-design exploration across SSD types,
//!   DRAM sizes, and SSD counts (Figs. 15–18),
//! * `batch_service` — a many-client batch service on the `megis-sched`
//!   engine: priority admission, sharded multi-SSD execution, and the §4.7
//!   inter-sample pipeline,
//! * `streaming_service` — the same engine in service mode: clients submit
//!   from several threads while it runs, clinical cases overtake queued
//!   work mid-stream, results stream back incrementally, and the service
//!   drains gracefully.

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
use megis_genomics::profile::AbundanceProfile;
use megis_genomics::taxonomy::Taxonomy;
use megis_tools::timing::Breakdown;

/// Formats an abundance profile with species names for display.
pub fn format_profile(profile: &AbundanceProfile, taxonomy: &Taxonomy) -> String {
    let mut rows: Vec<(f64, String)> = profile
        .iter()
        .map(|(taxid, abundance)| {
            let name = taxonomy.name(taxid).unwrap_or("<unknown>").to_string();
            (
                abundance,
                format!("  {:>7.2}%  {name} ({taxid})", abundance * 100.0),
            )
        })
        .collect();
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    rows.into_iter()
        .map(|(_, line)| line)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Formats a timing breakdown as a short indented table.
pub fn format_breakdown(breakdown: &Breakdown) -> String {
    let mut out = format!(
        "{} — total {:.1} s\n",
        breakdown.label,
        breakdown.total().as_secs()
    );
    for phase in &breakdown.phases {
        out.push_str(&format!(
            "    {:<48} {:>8.1} s\n",
            phase.name,
            phase.duration.as_secs()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::taxonomy::{Rank, TaxId};

    #[test]
    fn profile_formatting_sorts_by_abundance() {
        let mut taxonomy = Taxonomy::new();
        taxonomy.add_node(TaxId(1), TaxId::ROOT, Rank::Species, "Minor species");
        taxonomy.add_node(TaxId(2), TaxId::ROOT, Rank::Species, "Major species");
        let profile = AbundanceProfile::from_counts([(TaxId(1), 10), (TaxId(2), 90)]);
        let text = format_profile(&profile, &taxonomy);
        let major = text.find("Major species").unwrap();
        let minor = text.find("Minor species").unwrap();
        assert!(major < minor, "dominant species must be listed first");
    }

    #[test]
    fn breakdown_formatting_contains_phases() {
        let mut b = Breakdown::new("demo");
        b.push_phase("phase one", megis_ssd::timing::SimDuration::from_secs(1.5));
        let text = format_breakdown(&b);
        assert!(text.contains("demo"));
        assert!(text.contains("phase one"));
    }
}
