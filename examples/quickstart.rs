//! Quickstart: analyze a synthetic metagenomic sample with MegIS.
//!
//! Builds a small synthetic community (references + reads), runs the
//! functional MegIS pipeline (Steps 1–3) on it, scores the result against the
//! known ground truth, and then asks the performance model what the same
//! analysis would cost at paper scale (100 M reads, 701 GB database) on the
//! two evaluated SSDs.
//!
//! Run with: `cargo run -p megis-examples --bin quickstart`

use megis::config::MegisConfig;
use megis::pipeline::MegisTimingModel;
use megis::MegisAnalyzer;
use megis_examples::{format_breakdown, format_profile};
use megis_genomics::metrics::{AbundanceError, ClassificationMetrics};
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_tools::workload::WorkloadSpec;

fn main() {
    println!("MegIS quickstart");
    println!("================\n");

    // 1. Create a synthetic community: 6 species drawn from a 24-species
    //    reference collection, 500 short reads.
    let community = CommunityConfig::preset(Diversity::Medium)
        .with_species(6)
        .with_reads(500)
        .with_database_species(24)
        .build(42);
    println!(
        "sample: {} reads, {} true species, database of {} species",
        community.sample().len(),
        community.truth_presence().len(),
        community.references().species().len()
    );

    // 2. Build MegIS's databases (sorted k-mer database, sketches, KSS tables,
    //    per-species mapping indexes) and analyze the sample.
    let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
    let result = analyzer.analyze(community.sample());

    println!("\nspecies reported present: {}", result.presence.len());
    println!(
        "query k-mers: {} selected, {} intersected the database",
        result.selected_kmers, result.intersecting_kmers
    );
    println!("\nestimated abundance profile:");
    println!(
        "{}",
        format_profile(&result.abundance, community.references().taxonomy())
    );

    // 3. Score against the ground truth carried by the synthetic reads.
    let metrics = ClassificationMetrics::score(&result.presence, &community.truth_presence());
    let l1 = AbundanceError::score(&result.abundance, community.truth_profile());
    println!(
        "\naccuracy vs ground truth: F1 {:.3} (precision {:.3}, recall {:.3}), L1 error {:.3}",
        metrics.f1(),
        metrics.precision(),
        metrics.recall(),
        l1.l1_norm
    );

    // 4. What would this analysis cost at paper scale?
    println!("\npaper-scale performance estimate (CAMI-M, 100 M reads, 701 GB database):\n");
    let workload = WorkloadSpec::cami(Diversity::Medium);
    for ssd in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
        let system = SystemConfig::reference(ssd);
        let breakdown = MegisTimingModel::full().presence_breakdown(&system, &workload);
        println!("{}", format_breakdown(&breakdown));
    }
    println!(
        "Compare with the baselines via `cargo run -p megis-bench --bin fig12_presence_speedup`."
    );
}
