//! System-design exploration: which storage/memory configuration gives the
//! most analysis throughput per dollar?
//!
//! The paper argues (Fig. 18) that MegIS turns a *cost-optimized* system
//! (SATA SSD, small DRAM) into a faster analysis platform than baselines
//! running on a far more expensive performance-optimized system. This example
//! sweeps system designs — SSD type, DRAM capacity, SSD count — and reports
//! runtime, hardware cost, and cost-efficiency for the P-Opt baseline, the
//! A-Opt baseline, and MegIS.
//!
//! Run with: `cargo run -p megis-examples --bin cost_efficiency_sweep`

use megis::pipeline::MegisTimingModel;
use megis_genomics::sample::Diversity;
use megis_host::cost::{cost_efficiency, system_price_usd};
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::workload::WorkloadSpec;
use megis_tools::{KrakenTimingModel, MetalignTimingModel};

fn main() {
    println!("System cost-efficiency sweep (CAMI-M, 100 M reads)");
    println!("==================================================\n");

    let workload = WorkloadSpec::cami(Diversity::Medium);
    let designs: Vec<(&str, SystemConfig)> = vec![
        (
            "SSD-C + 64 GB",
            SystemConfig::reference(SsdConfig::ssd_c()).with_dram_capacity(ByteSize::from_gb(64.0)),
        ),
        ("SSD-C + 1 TB", SystemConfig::reference(SsdConfig::ssd_c())),
        (
            "SSD-P + 64 GB",
            SystemConfig::reference(SsdConfig::ssd_p()).with_dram_capacity(ByteSize::from_gb(64.0)),
        ),
        ("SSD-P + 1 TB", SystemConfig::reference(SsdConfig::ssd_p())),
        (
            "2x SSD-C + 64 GB",
            SystemConfig::reference(SsdConfig::ssd_c())
                .with_dram_capacity(ByteSize::from_gb(64.0))
                .with_ssd_count(2),
        ),
        (
            "4x SSD-C + 64 GB",
            SystemConfig::reference(SsdConfig::ssd_c())
                .with_dram_capacity(ByteSize::from_gb(64.0))
                .with_ssd_count(4),
        ),
    ];

    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>12} {:>16}",
        "system", "price $", "P-Opt s", "A-Opt s", "MegIS s", "MegIS eff./$"
    );
    let mut best: Option<(String, f64)> = None;
    for (name, system) in &designs {
        let price = system_price_usd(system);
        let p = KrakenTimingModel
            .presence_breakdown(system, &workload)
            .total()
            .as_secs();
        let a = MetalignTimingModel::a_opt()
            .presence_breakdown(system, &workload)
            .total()
            .as_secs();
        let ms = MegisTimingModel::full()
            .presence_breakdown(system, &workload)
            .total()
            .as_secs();
        let efficiency = cost_efficiency(price, ms);
        println!("{name:<20} {price:>10.0} {p:>12.0} {a:>12.0} {ms:>12.0} {efficiency:>16.3}");
        if best.as_ref().map(|(_, e)| efficiency > *e).unwrap_or(true) {
            best = Some((name.to_string(), efficiency));
        }
    }

    let (best_name, _) = best.expect("at least one design");
    println!("\nmost cost-efficient MegIS design in this sweep: {best_name}");
    println!("\nNote how MegIS on the cheapest design already outruns both baselines on the");
    println!("most expensive one — the paper's cost-efficiency argument (Fig. 18): the");
    println!("analysis no longer needs large DRAM or a high-bandwidth host interface.");
}
