//! Clinical pathogen identification: a time-critical presence/absence call.
//!
//! The paper motivates MegIS with urgent clinical settings (e.g. sepsis or
//! bloodstream-infection diagnostics), where a sample must be checked against
//! a large reference database quickly and *accurately* — a missed pathogen
//! (false negative) or a spurious one (false positive) both carry clinical
//! cost. This example:
//!
//! 1. simulates a patient sample containing a low-abundance pathogen on top of
//!    common commensal species,
//! 2. runs the performance-optimized baseline (sampled database), the
//!    accuracy-optimized baseline, and MegIS functionally and checks which of
//!    them detect the pathogen, and
//! 3. compares turnaround times at paper scale on a cost-optimized system —
//!    the setting a clinic is most likely to afford.
//!
//! Run with: `cargo run -p megis-examples --bin clinical_pathogen_id`

use megis::config::MegisConfig;
use megis::pipeline::MegisTimingModel;
use megis::MegisAnalyzer;
use megis_examples::format_breakdown;
use megis_genomics::sample::{CommunityConfig, Diversity};
use megis_genomics::taxonomy::TaxId;
use megis_host::system::SystemConfig;
use megis_tools::kraken::KrakenClassifier;
use megis_tools::metalign::MetalignClassifier;
use megis_tools::workload::WorkloadSpec;
use megis_tools::{KrakenTimingModel, MetalignTimingModel};

fn main() {
    println!("Clinical pathogen identification scenario");
    println!("=========================================\n");

    // A gut-like background community plus one low-abundance pathogen: the
    // community generator's least-abundant species plays the pathogen role.
    let community = CommunityConfig::preset(Diversity::Low)
        .with_species(5)
        .with_reads(800)
        .with_database_species(32)
        .build(2025);
    let truth = community.truth_presence();
    let pathogen: TaxId = *community
        .truth_profile()
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(taxid, _)| taxid)
        .iter()
        .next()
        .unwrap();
    let pathogen_abundance = community.truth_profile().abundance(pathogen);
    println!(
        "sample: {} reads, {} species present; target pathogen {} at {:.1}% abundance\n",
        community.sample().len(),
        truth.len(),
        community
            .references()
            .taxonomy()
            .name(pathogen)
            .unwrap_or("<unknown>"),
        pathogen_abundance * 100.0
    );

    // Functional detection comparison.
    let config = MegisConfig::small();
    let megis = MegisAnalyzer::build(community.references(), config);
    let metalign = MetalignClassifier::build(community.references(), config.sketch);
    let kraken = KrakenClassifier::build(&community.references().subsample(2), 21);

    let megis_hit = megis
        .identify_presence(community.sample())
        .presence
        .contains(pathogen);
    let metalign_hit = metalign
        .identify_presence(community.sample().reads())
        .presence
        .contains(pathogen);
    let kraken_hit = kraken
        .classify(community.sample().reads())
        .presence
        .contains(pathogen);

    println!("pathogen detected?");
    println!("  P-Opt (sampled database):      {}", yes_no(kraken_hit));
    println!("  A-Opt (full database):         {}", yes_no(metalign_hit));
    println!("  MegIS (full database, ISP):    {}", yes_no(megis_hit));

    // Turnaround time on the clinic's cost-optimized system.
    println!("\nturnaround time at paper scale (cost-optimized system: SSD-C, 64 GB DRAM):\n");
    let system = SystemConfig::cost_optimized();
    let workload = WorkloadSpec::cami(Diversity::Low);
    let p = KrakenTimingModel.presence_breakdown(&system, &workload);
    let a = MetalignTimingModel::a_opt().presence_breakdown(&system, &workload);
    let ms = MegisTimingModel::full().presence_breakdown(&system, &workload);
    println!("{}", format_breakdown(&p));
    println!("{}", format_breakdown(&a));
    println!("{}", format_breakdown(&ms));
    println!(
        "MegIS answers {:.1}x faster than the accuracy-optimized tool and {:.1}x faster than\n\
         the performance-optimized tool — while giving the accuracy-optimized answer.",
        a.total() / ms.total(),
        p.total() / ms.total()
    );
}

fn yes_no(detected: bool) -> &'static str {
    if detected {
        "detected"
    } else {
        "MISSED"
    }
}
